package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// buildJobs makes n deterministic jobs seeded by seed; each returns a
// string derived from its index so result ordering is observable.
func buildJobs(seed, n int, key bool) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		k := ""
		if key {
			k = Key("job", seed, i)
		}
		jobs[i] = Job{
			ID:  fmt.Sprintf("s%d-j%d", seed, i),
			Key: k,
			Fn: func(context.Context) (any, error) {
				return fmt.Sprintf("seed=%d idx=%d val=%d", seed, i, seed*1000+i*7), nil
			},
		}
	}
	return jobs
}

// TestDeterministicOrdering asserts that a parallel run returns the exact
// result sequence of a serial run, across 20 seeds.
func TestDeterministicOrdering(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		serial := New(Config{Workers: 1})
		parallel := New(Config{Workers: 8})
		jobs := buildJobs(seed, 64, false)
		want := serial.Run(context.Background(), jobs)
		got := parallel.Run(context.Background(), jobs)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: parallel results differ from serial\nserial:   %v\nparallel: %v", seed, want, got)
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	e := New(Config{})
	if e.Workers() < 1 {
		t.Fatalf("default workers = %d, want >= 1", e.Workers())
	}
	if got := New(Config{Workers: 3}).Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
}

// TestCacheAccounting checks hit/miss counters and that cached jobs reuse
// the first computation.
func TestCacheAccounting(t *testing.T) {
	e := New(Config{Workers: 4})
	var calls atomic.Int64
	job := Job{
		ID:  "cached",
		Key: Key("fixed"),
		Fn: func(context.Context) (any, error) {
			calls.Add(1)
			return "value", nil
		},
	}
	jobs := make([]Job, 10)
	for i := range jobs {
		jobs[i] = job
	}
	res := e.Run(context.Background(), jobs)
	for i, r := range res {
		if r.Err != nil || r.Value != "value" {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("job computed %d times, want 1", got)
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 9 {
		t.Fatalf("stats = %+v, want 1 miss / 9 hits", st)
	}
	cached := 0
	for _, r := range res {
		if r.Cached {
			cached++
		}
	}
	if cached != 9 {
		t.Fatalf("%d results marked Cached, want 9", cached)
	}

	// A second run is all hits.
	e.Run(context.Background(), jobs[:4])
	if st := e.Stats(); st.Misses != 1 || st.Hits != 13 {
		t.Fatalf("after second run stats = %+v, want 1 miss / 13 hits", st)
	}

	e.InvalidateCache()
	if e.CacheLen() != 0 {
		t.Fatalf("cache not empty after invalidate")
	}
	e.Run(context.Background(), jobs[:1])
	if got := calls.Load(); got != 2 {
		t.Fatalf("after invalidate job computed %d times, want 2", got)
	}
}

// TestCacheDisabled verifies DisableCache computes every submission.
func TestCacheDisabled(t *testing.T) {
	e := New(Config{Workers: 2, DisableCache: true})
	var calls atomic.Int64
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i] = Job{ID: "j", Key: Key("same"), Fn: func(context.Context) (any, error) {
			calls.Add(1)
			return nil, nil
		}}
	}
	e.Run(context.Background(), jobs)
	if calls.Load() != 5 {
		t.Fatalf("computed %d times, want 5", calls.Load())
	}
	if st := e.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("cache counters moved with cache disabled: %+v", st)
	}
}

// TestCancellationMidSweep cancels while a batch is in flight and checks
// that unstarted jobs report ctx.Err() without executing.
func TestCancellationMidSweep(t *testing.T) {
	e := New(Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	started := make(chan struct{})
	var once sync.Once
	block := make(chan struct{})

	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = Job{
			ID: fmt.Sprintf("j%d", i),
			Fn: func(ctx context.Context) (any, error) {
				once.Do(func() { close(started) })
				executed.Add(1)
				select {
				case <-block:
					return "done", nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			},
		}
	}
	go func() {
		<-started
		cancel()
		close(block)
	}()
	res := e.Run(ctx, jobs)
	var cancelled int
	for _, r := range res {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatalf("no job observed cancellation; executed=%d", executed.Load())
	}
	if executed.Load() == int64(len(jobs)) {
		t.Log("all jobs started before cancel (slow machine); cancellation still observed")
	}
}

// TestCancellationNotCached ensures a cancelled computation does not poison
// the cache: a later run with a live context recomputes the key.
func TestCancellationNotCached(t *testing.T) {
	e := New(Config{Workers: 1})
	key := Key("retry")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.RunOne(ctx, Job{ID: "first", Key: key, Fn: func(ctx context.Context) (any, error) {
		return nil, ctx.Err()
	}})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("first run err = %v, want context.Canceled", res.Err)
	}
	res = e.RunOne(context.Background(), Job{ID: "second", Key: key, Fn: func(context.Context) (any, error) {
		return "fresh", nil
	}})
	if res.Err != nil || res.Value != "fresh" {
		t.Fatalf("second run = %+v, want fresh value", res)
	}
}

// TestErrorsAreCached verifies deterministic (non-cancellation) errors are
// shared like values.
func TestErrorsAreCached(t *testing.T) {
	e := New(Config{Workers: 2})
	boom := errors.New("boom")
	var calls atomic.Int64
	job := Job{ID: "e", Key: Key("err"), Fn: func(context.Context) (any, error) {
		calls.Add(1)
		return nil, boom
	}}
	res := e.Run(context.Background(), []Job{job, job, job})
	for i, r := range res {
		if !errors.Is(r.Err, boom) {
			t.Fatalf("result %d err = %v, want boom", i, r.Err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("error computed %d times, want 1", calls.Load())
	}
}

// TestNestedSubmission runs jobs that themselves submit sub-jobs through
// the same saturated engine; inline execution must prevent deadlock.
func TestNestedSubmission(t *testing.T) {
	e := New(Config{Workers: 2})
	outer := make([]Job, 8)
	for i := range outer {
		i := i
		outer[i] = Job{
			ID: fmt.Sprintf("outer%d", i),
			Fn: func(ctx context.Context) (any, error) {
				sub := make([]Job, 4)
				for j := range sub {
					j := j
					sub[j] = Job{ID: fmt.Sprintf("inner%d-%d", i, j), Fn: func(context.Context) (any, error) {
						return i*10 + j, nil
					}}
				}
				total := 0
				for _, r := range e.Run(ctx, sub) {
					if r.Err != nil {
						return nil, r.Err
					}
					total += r.Value.(int)
				}
				return total, nil
			},
		}
	}
	done := make(chan []Result, 1)
	go func() { done <- e.Run(context.Background(), outer) }()
	select {
	case res := <-done:
		for i, r := range res {
			want := i*40 + 6 // sum of i*10+j for j in 0..3
			if r.Err != nil || r.Value.(int) != want {
				t.Fatalf("outer %d = %+v, want %d", i, r, want)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested submission deadlocked")
	}
}

// TestPanicIsolated converts a panicking job into an error without
// crashing the pool.
func TestPanicIsolated(t *testing.T) {
	e := New(Config{Workers: 2})
	res := e.Run(context.Background(), []Job{
		{ID: "ok", Fn: func(context.Context) (any, error) { return 1, nil }},
		{ID: "bad", Fn: func(context.Context) (any, error) { panic("kaboom") }},
		{ID: "ok2", Fn: func(context.Context) (any, error) { return 2, nil }},
	})
	if res[0].Err != nil || res[2].Err != nil {
		t.Fatalf("healthy jobs errored: %+v", res)
	}
	if res[1].Err == nil || res[1].Value != nil {
		t.Fatalf("panicking job result = %+v, want error", res[1])
	}
}

// TestKeyDeterminism checks Key is stable and collision-free across
// distinct part tuples.
func TestKeyDeterminism(t *testing.T) {
	type opts struct {
		Quick bool
		Scale int
	}
	a := Key("fig4", opts{Quick: true, Scale: 2})
	b := Key("fig4", opts{Quick: true, Scale: 2})
	if a != b {
		t.Fatalf("identical parts hashed differently: %s vs %s", a, b)
	}
	seen := map[string]string{}
	for _, parts := range [][]any{
		{"fig4", opts{}},
		{"fig4", opts{Quick: true}},
		{"fig5", opts{}},
		{"fig4", opts{Scale: 1}},
		{"fig4", "extra"},
	} {
		k := Key(parts...)
		label := fmt.Sprintf("%v", parts)
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision between %s and %s", prev, label)
		}
		seen[k] = label
	}
}

// TestMap checks ordered fan-out with caching and error propagation.
func TestMap(t *testing.T) {
	e := New(Config{Workers: 4})
	items := []int{1, 2, 3, 4, 5, 3, 2}
	var calls atomic.Int64
	out, err := Map(context.Background(), e, items,
		func(v int) string { return Key("sq", v) },
		func(_ context.Context, v int) (int, error) {
			calls.Add(1)
			return v * v, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 9, 16, 25, 9, 4}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("Map = %v, want %v", out, want)
	}
	if calls.Load() != 5 {
		t.Fatalf("computed %d distinct items, want 5 (two were cached)", calls.Load())
	}

	_, err = Map(context.Background(), e, []int{7, 8}, nil,
		func(_ context.Context, v int) (int, error) {
			if v == 8 {
				return 0, errors.New("eight is unlucky")
			}
			return v, nil
		})
	if err == nil {
		t.Fatal("Map swallowed the error")
	}
}

// TestConcurrentRunCallers hammers one engine from many goroutines to give
// the race detector surface area.
func TestConcurrentRunCallers(t *testing.T) {
	e := New(Config{Workers: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs := buildJobs(g, 32, true)
			for rep := 0; rep < 3; rep++ {
				for _, r := range e.Run(context.Background(), jobs) {
					if r.Err != nil {
						t.Errorf("goroutine %d: %v", g, r.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	st := e.Stats()
	if st.Misses != 8*32 {
		t.Fatalf("misses = %d, want %d (one per distinct key)", st.Misses, 8*32)
	}
}

// TestWaiterSurvivesComputerCancellation covers the singleflight edge
// where the goroutine computing a key is cancelled while another submitter
// with a live context waits on it: the waiter must recompute, not inherit
// the foreign cancellation.
func TestWaiterSurvivesComputerCancellation(t *testing.T) {
	e := New(Config{Workers: 4})
	key := Key("shared-flight")
	ctxA, cancelA := context.WithCancel(context.Background())
	started := make(chan struct{})

	var wg sync.WaitGroup
	var resA, resB Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		resA = e.RunOne(ctxA, Job{ID: "computer", Key: key, Fn: func(ctx context.Context) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		resB = e.RunOne(context.Background(), Job{ID: "waiter", Key: key, Fn: func(context.Context) (any, error) {
			return "recomputed", nil
		}})
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter block on the in-flight entry
	cancelA()
	wg.Wait()

	if !errors.Is(resA.Err, context.Canceled) {
		t.Fatalf("computer result = %+v, want context.Canceled", resA)
	}
	if resB.Err != nil || resB.Value != "recomputed" {
		t.Fatalf("waiter result = %+v, want recomputed value", resB)
	}
}

// TestOnDoneFiresOncePerJob: every job's OnDone hook must fire exactly
// once with the job's own result, before Run returns, across worker
// counts (exercising both the pool and the inline path).
func TestOnDoneFiresOncePerJob(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		eng := New(Config{Workers: workers})
		const n = 24
		jobs := buildJobs(workers, n, true)
		var mu sync.Mutex
		calls := make(map[string]int)
		notified := make(map[string]Result)
		for i := range jobs {
			id := jobs[i].ID
			jobs[i].OnDone = func(r Result) {
				mu.Lock()
				calls[id]++
				notified[id] = r
				mu.Unlock()
			}
		}
		results := eng.Run(context.Background(), jobs)
		// Run has returned: every hook must already have fired, no lock
		// needed beyond the race detector's satisfaction.
		mu.Lock()
		defer mu.Unlock()
		if len(calls) != n {
			t.Fatalf("workers=%d: %d jobs notified, want %d", workers, len(calls), n)
		}
		for i, r := range results {
			id := jobs[i].ID
			if calls[id] != 1 {
				t.Errorf("workers=%d: %s notified %d times, want 1", workers, id, calls[id])
			}
			if got := notified[id]; got.Value != r.Value || got.Err != r.Err {
				t.Errorf("workers=%d: %s notified %+v, Run returned %+v", workers, id, got, r)
			}
		}
	}
}

// TestOnDoneInline: with Workers=1 every job runs inline on the calling
// goroutine, and the hook must still fire for each (synchronously, so no
// locking is even necessary).
func TestOnDoneInline(t *testing.T) {
	eng := New(Config{Workers: 1})
	var order []string
	jobs := buildJobs(7, 6, false)
	for i := range jobs {
		id := jobs[i].ID
		jobs[i].OnDone = func(Result) { order = append(order, id) }
	}
	eng.Run(context.Background(), jobs)
	if st := eng.Stats(); st.Inline != 6 {
		t.Fatalf("inline executions = %d, want 6", st.Inline)
	}
	for i, id := range order {
		if id != jobs[i].ID {
			t.Fatalf("inline notification order %v, want submission order", order)
		}
	}
	if len(order) != 6 {
		t.Fatalf("%d notifications, want 6", len(order))
	}
}

// TestOnDoneCancellationAndCache: hooks fire for cancelled results (with
// the context error) and for cache-satisfied duplicates.
func TestOnDoneCancellationAndCache(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := New(Config{Workers: 4})
	var notified atomic.Uint64
	jobs := buildJobs(1, 4, true)
	for i := range jobs {
		jobs[i].OnDone = func(r Result) {
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("cancelled job notified with err %v", r.Err)
			}
			notified.Add(1)
		}
	}
	eng.Run(ctx, jobs)
	if notified.Load() != 4 {
		t.Fatalf("%d cancelled notifications, want 4", notified.Load())
	}

	// Same key twice: the duplicate is served from cache, but both hooks
	// must fire and agree on the value.
	notified.Store(0)
	dup := make([]Job, 2)
	for i := range dup {
		dup[i] = Job{
			ID:  fmt.Sprintf("dup%d", i),
			Key: Key("ondone-dup"),
			Fn:  func(context.Context) (any, error) { return "v", nil },
			OnDone: func(r Result) {
				if r.Value != "v" || r.Err != nil {
					t.Errorf("dup notified %+v", r)
				}
				notified.Add(1)
			},
		}
	}
	eng.Run(context.Background(), dup)
	if notified.Load() != 2 {
		t.Fatalf("%d duplicate notifications, want 2", notified.Load())
	}
}
