package engine

import (
	"fmt"
	"strconv"
	"sync"
)

// KeyAppender lets a key part append its own Go-syntax representation to a
// key buffer without going through fmt's reflection machinery. The
// appended bytes MUST be byte-identical to fmt.Sprintf("%#v", part) for
// the same value: cache keys feed the persistent disk cache, so any
// divergence silently invalidates (or worse, aliases) warm entries.
// Implementations are verified against %#v by per-package differential
// tests; run them after changing any implementing struct.
type KeyAppender interface {
	AppendKey(b []byte) []byte
}

// FNV-1a 64-bit parameters (hash/fnv), inlined so key hashing needs no
// hash.Hash allocation or Write call per part.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// KeyWriter accumulates cache-key parts into an FNV-1a hash using an
// append-based, type-switched encoder instead of fmt reflection. Call
// Reset before first use. Encoding contract: every part contributes exactly
// the bytes of its %#v rendering followed by a NUL separator — the same
// stream the pre-KeyWriter implementation hashed — so keys (and therefore
// warm disk caches) are stable across the rewrite.
type KeyWriter struct {
	h   uint64
	buf []byte
}

// Reset clears the accumulated hash, keeping the scratch buffer.
func (w *KeyWriter) Reset() {
	w.h = fnvOffset64
	w.buf = w.buf[:0]
}

// fold hashes the staged buffer into the key and accounts for the NUL
// part separator (h ^= 0 is the identity, so only the multiply remains).
func (w *KeyWriter) fold() {
	h := w.h
	for _, c := range w.buf {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	h *= fnvPrime64
	w.h = h
}

// WritePart folds one part into the key. Scalars and strings are encoded
// without reflection; types implementing KeyAppender encode themselves;
// anything else falls back to fmt's %#v (correct, but slow — add a
// KeyAppender implementation for hot types). Hot call sites that know
// their part types statically should prefer the typed Write* methods (and
// WriteAppender), which skip the interface boxing this signature forces.
func (w *KeyWriter) WritePart(p any) {
	b := w.buf[:0]
	switch v := p.(type) {
	case KeyAppender:
		b = v.AppendKey(b)
	case string:
		b = strconv.AppendQuote(b, v)
	case bool:
		b = strconv.AppendBool(b, v)
	case int:
		b = strconv.AppendInt(b, int64(v), 10)
	case int64:
		b = strconv.AppendInt(b, v, 10)
	case int32:
		b = strconv.AppendInt(b, int64(v), 10)
	case float64:
		// fmt's %v (and %#v) for float64 is strconv 'g' with shortest
		// precision; special values (NaN, ±Inf) match as well.
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
	case uint64:
		b = appendHex(b, v)
	case uint:
		b = appendHex(b, uint64(v))
	case uint32:
		b = appendHex(b, uint64(v))
	case uint8:
		b = appendHex(b, uint64(v))
	default:
		b = fmt.Appendf(b, "%#v", p)
	}
	w.buf = b
	w.fold()
}

// Typed part writers: identical encodings to WritePart's fast paths, no
// interface boxing at the call site. A key built from typed writes is
// byte-identical to the same parts passed through WritePart/Key.

// WriteString folds a string part (%#v: double-quoted Go string).
func (w *KeyWriter) WriteString(s string) {
	w.buf = strconv.AppendQuote(w.buf[:0], s)
	w.fold()
}

// WriteBool folds a bool part.
func (w *KeyWriter) WriteBool(v bool) {
	w.buf = strconv.AppendBool(w.buf[:0], v)
	w.fold()
}

// WriteInt folds an int part (%#v: decimal).
func (w *KeyWriter) WriteInt(v int) {
	w.buf = strconv.AppendInt(w.buf[:0], int64(v), 10)
	w.fold()
}

// WriteUint64 folds a uint64 part (%#v: 0x-prefixed hex).
func (w *KeyWriter) WriteUint64(v uint64) {
	w.buf = appendHex(w.buf[:0], v)
	w.fold()
}

// WriteFloat64 folds a float64 part (%#v: shortest 'g').
func (w *KeyWriter) WriteFloat64(v float64) {
	w.buf = strconv.AppendFloat(w.buf[:0], v, 'g', -1, 64)
	w.fold()
}

// WriteAppender folds a KeyAppender part without converting it to an
// interface: the generic instantiation calls AppendKey on the concrete
// type directly, so the part never escapes to the heap. This is the
// hot-path form the sweep and simulation key builders use.
func WriteAppender[T KeyAppender](w *KeyWriter, v T) {
	w.buf = v.AppendKey(w.buf[:0])
	w.fold()
}

// appendHex appends the %#v rendering of an unsigned integer, which fmt
// formats as 0x-prefixed lowercase hex.
func appendHex(b []byte, v uint64) []byte {
	b = append(b, '0', 'x')
	return strconv.AppendUint(b, v, 16)
}

// keyIntern deduplicates produced key strings process-wide: the same
// experiment/sweep/sim keys are rebuilt on every submission (cache hits
// included), so steady state returns the one shared string instead of
// allocating a fresh copy. Memory is bounded by the number of distinct
// keys the process ever builds — a function of its experiment/config set,
// not of request volume.
var keyIntern struct {
	sync.RWMutex
	m map[uint64]string
}

// Sum returns the accumulated key as 16 lowercase hex digits (%016x).
// Strings are interned by hash value, so repeated keys share one
// allocation.
func (w *KeyWriter) Sum() string {
	keyIntern.RLock()
	s, ok := keyIntern.m[w.h]
	keyIntern.RUnlock()
	if ok {
		return s
	}
	const digits = "0123456789abcdef"
	h := w.h
	var out [16]byte
	for i := 15; i >= 0; i-- {
		out[i] = digits[h&0xf]
		h >>= 4
	}
	s = string(out[:])
	keyIntern.Lock()
	if keyIntern.m == nil {
		keyIntern.m = make(map[uint64]string)
	}
	if existing, ok := keyIntern.m[w.h]; ok {
		s = existing
	} else {
		keyIntern.m[w.h] = s
	}
	keyIntern.Unlock()
	return s
}

// keyWriterPool recycles KeyWriters (really: their scratch buffers) across
// Key calls, so steady-state key construction allocates only the returned
// string (and not even that once the key has been interned).
var keyWriterPool = sync.Pool{New: func() any { return new(KeyWriter) }}

// AcquireKeyWriter returns a Reset KeyWriter from the pool. Pair with
// SumRelease; use this (plus the typed Write* methods) on hot key-building
// paths instead of the variadic Key, which boxes every part.
func AcquireKeyWriter() *KeyWriter {
	w := keyWriterPool.Get().(*KeyWriter)
	w.Reset()
	return w
}

// SumRelease returns the accumulated key and puts the writer back in the
// pool. The writer must not be used afterwards.
func (w *KeyWriter) SumRelease() string {
	s := w.Sum()
	keyWriterPool.Put(w)
	return s
}

// Key builds a deterministic cache key by hashing the %#v rendering of
// each part with FNV-1a. Parts must have deterministic %#v output (structs
// of scalars and slices — not maps). Scalar parts and KeyAppender
// implementors are encoded without fmt reflection; see KeyWriter.
func Key(parts ...any) string {
	w := keyWriterPool.Get().(*KeyWriter)
	w.Reset()
	for _, p := range parts {
		w.WritePart(p)
	}
	s := w.Sum()
	keyWriterPool.Put(w)
	return s
}
