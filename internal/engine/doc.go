// Package engine is the concurrent experiment runtime: a bounded worker
// pool that executes heterogeneous jobs (paper artifacts, design-space
// sweep points, simulator runs) with per-job context cancellation, a
// two-level config-hash result cache, and deterministic output ordering.
//
// The engine is deliberately independent of the model and workload
// packages so that any layer — cmd/mergescale submitting whole
// experiments, internal/core sharding a sweep into per-point sub-jobs,
// internal/workload sharding simulator runs per core count — can fan out
// through the same pool.
//
// # Concurrency model
//
// Nested submission is safe: when every worker slot is busy (e.g. a sweep
// sharded from inside an experiment job), Run executes the job inline on
// the calling goroutine instead of queueing, so a job waiting for its own
// sub-jobs can never deadlock the pool. The Run caller therefore counts as
// one of the Config.Workers workers, and Workers: 1 is exactly serial
// execution on the calling goroutine. Keep this caller-runs-inline
// invariant when extending the engine.
//
// # Caching
//
// Level one is an in-process singleflight map: jobs sharing a Key are
// computed once, with later submitters waiting for and sharing the first
// submitter's result. Level two is an optional persistent Store
// (Config.Store, usually a diskcache.Store) consulted on memory misses and
// filled after successful computations, which is what makes a repeated
// run of the full experiment suite near-instant across processes.
// Errored and cancelled computations are never cached at either level.
//
// Cache keys come from Key, which hashes the %#v rendering of its parts
// with FNV-1a. Key parts must render deterministically: structs of
// scalars, strings and slices — never pointers or maps. Anything that
// affects a job's output must be in its key; anything that only affects
// scheduling (like which engine runs the job) must stay out.
//
// # Determinism contract
//
// Run returns results in submission order no matter which worker finishes
// first, and the cache returns the identical value computed by the first
// submitter of a key. A parallel run therefore yields a byte-identical
// result set to a serial run of the same jobs, provided the job functions
// themselves are deterministic.
package engine
