package engine

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

// keyReflect is the pre-KeyWriter implementation of Key, kept as the
// reference: FNV-1a over the %#v rendering of each part, NUL-separated.
// The rewritten Key must match it byte-for-byte on every supported part
// type, or warm disk caches would silently stop replaying.
func keyReflect(parts ...any) string {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%#v\x00", p)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// keyTestStruct exercises the %#v fallback for types without a fast path.
type keyTestStruct struct {
	A int
	B string
	U uint64
}

func TestKeyMatchesReflectReference(t *testing.T) {
	cases := [][]any{
		{},
		{"experiment", "fig4", true, false},
		{"sim-run", "kmeans", 16},
		{"", ""},
		{0, -1, 1, -9223372036854775808, 9223372036854775807},
		{int64(-5), int32(7), uint(12), uint32(255), uint8(0), uint64(0), uint64(1), uint64(0xdeadbeef), uint64(math.MaxUint64)},
		{0.0, -0.0, 1.0, 0.1, 0.999, 1e21, 1e-7, -2.5, 3.0, math.Pi},
		{math.Inf(1), math.Inf(-1), math.NaN()},
		{"quotes \" and \\ and \n and \t", "unicode: héllo ⊕", "nul \x00 byte", "`backquoted`"},
		{keyTestStruct{A: 1, B: "x", U: 42}},
		{true, 1, "mixed", 2.5, uint64(9), keyTestStruct{}},
	}
	for _, parts := range cases {
		if got, want := Key(parts...), keyReflect(parts...); got != want {
			t.Errorf("Key(%#v) = %q, reference %q", parts, got, want)
		}
	}
}

// TestKeyScalarGoldens pins Key outputs captured before the KeyWriter
// rewrite. These literals must NEVER change: they are the disk-cache key
// format (see docs/ARCHITECTURE.md).
func TestKeyScalarGoldens(t *testing.T) {
	goldens := []struct {
		parts []any
		want  string
	}{
		{[]any{}, "cbf29ce484222325"},
		{[]any{"square", 7}, "12df7a433ad704eb"},
		{[]any{"", -42, uint64(0), uint64(255), true, false, 0.1, 1e21, -0.0, "a\"b\\c\nd", 3.0}, "e025b45921d34bd7"},
	}
	for _, g := range goldens {
		if got := Key(g.parts...); got != g.want {
			t.Errorf("Key(%#v) = %q, golden %q", g.parts, got, g.want)
		}
	}
}

// TestKeyQuickScalars property-checks the fast paths against the reference
// across randomized scalar inputs.
func TestKeyQuickScalars(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	check := func(name string, f any) {
		t.Helper()
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	check("string", func(s string) bool { return Key(s) == keyReflect(s) })
	check("int", func(v int) bool { return Key(v) == keyReflect(v) })
	check("int64", func(v int64) bool { return Key(v) == keyReflect(v) })
	check("uint64", func(v uint64) bool { return Key(v) == keyReflect(v) })
	check("float64", func(v float64) bool { return Key(v) == keyReflect(v) })
	check("bool", func(v bool) bool { return Key(v) == keyReflect(v) })
	check("mixed", func(a string, b uint64, c float64, d int, e bool) bool {
		return Key(a, b, c, d, e) == keyReflect(a, b, c, d, e)
	})
}

func TestKeyWriterReuse(t *testing.T) {
	var w KeyWriter
	w.Reset()
	w.WritePart("a")
	w.WritePart(1)
	first := w.Sum()
	if first != Key("a", 1) {
		t.Errorf("KeyWriter sum %q != Key %q", first, Key("a", 1))
	}
	w.Reset()
	w.WritePart("b")
	if got, want := w.Sum(), Key("b"); got != want {
		t.Errorf("after Reset: sum %q, want %q", got, want)
	}
}

// TestKeyAppenderUsed asserts Key prefers a part's AppendKey over fmt.
type goodAppender struct{ N int }

func (g goodAppender) AppendKey(b []byte) []byte {
	b = append(b, "engine.goodAppender{N:"...)
	b = strconv.AppendInt(b, int64(g.N), 10)
	return append(b, '}')
}

func TestKeyAppenderUsed(t *testing.T) {
	// The appender emits exactly the %#v bytes, so the key must equal the
	// reference implementation's.
	if got, want := Key(goodAppender{N: 3}), keyReflect(goodAppender{N: 3}); got != want {
		t.Errorf("Key with appender = %q, reference %q", got, want)
	}
}

func BenchmarkKeyScalars(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Key("sweep-sym", "kmeans", 0.99985, uint64(120), i&7)
	}
}

func BenchmarkKeyReflectScalars(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		keyReflect("sweep-sym", "kmeans", 0.99985, uint64(120), i&7)
	}
}
