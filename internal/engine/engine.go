package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config tunes an Engine.
type Config struct {
	// Workers bounds concurrent job execution; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// DisableCache turns the result cache off (every job computes). It
	// disables the persistent Store as well.
	DisableCache bool
	// Store, when non-nil, is a second-level persistent result cache
	// (e.g. a diskcache.Store). It is consulted on memory-cache misses
	// and filled after successful computations; errored or cancelled jobs
	// are never persisted.
	Store Store
}

// Store is an optional persistent result cache layered under the in-memory
// singleflight cache. Implementations must be safe for concurrent use and
// strictly best-effort: Get returns (nil, false) for any entry it cannot
// produce (absent, corrupt, stale), and Put failures must be silent — a
// Store can make the engine faster, never broken.
type Store interface {
	Get(key string) (val any, ok bool)
	Put(key string, val any)
}

// Job is one unit of work.
type Job struct {
	// ID labels the job in results (not required to be unique).
	ID string
	// Key is the config-hash cache key. Jobs sharing a Key are computed
	// once: the first submitter runs Fn, later submitters wait for and
	// share its result. An empty Key disables caching for the job.
	Key string
	// Fn computes the result. It must honor ctx cancellation for prompt
	// shutdown and must be deterministic for its Key.
	Fn func(ctx context.Context) (any, error)
	// OnDone, when non-nil, is invoked exactly once with the job's Result
	// as soon as it is known — including cached, errored, and cancelled
	// results — and always before Run returns. It runs on whichever
	// goroutine resolved the job: a pool worker, or (per the caller-runs-
	// inline invariant) the goroutine that called Run. Callbacks for
	// different jobs may fire concurrently and in any completion order, so
	// they must synchronize shared state themselves and should return
	// quickly — a slow callback occupies a worker slot. This is the
	// completion-notification hook the streaming experiment pipeline is
	// built on: consumers learn of each result without polling Run's
	// return slice.
	OnDone func(Result)
}

// Result is the outcome of one submitted job, reported in submission order.
type Result struct {
	ID     string
	Value  any
	Err    error
	Cached bool // satisfied by the cache (shared or replayed result)
}

// Stats counts cache traffic and execution modes since engine creation.
type Stats struct {
	Hits        uint64 // jobs satisfied by a cached or in-flight computation (memory)
	Misses      uint64 // cacheable jobs that missed the memory cache
	Executed    uint64 // job functions actually invoked
	Inline      uint64 // jobs run on the submitting goroutine (pool saturated, or the single-job RunOne fast path — NOT a saturation signal by itself)
	StoreHits   uint64 // memory misses satisfied by the persistent store
	StoreMisses uint64 // store lookups that fell through to computation
}

// Engine is a reusable bounded-concurrency job runner. The zero value is
// not usable; call New.
type Engine struct {
	workers int
	sem     chan struct{}
	noCache bool
	store   Store

	mu    sync.Mutex
	cache map[string]*cacheEntry

	hits        atomic.Uint64
	misses      atomic.Uint64
	executed    atomic.Uint64
	inline      atomic.Uint64
	storeHits   atomic.Uint64
	storeMisses atomic.Uint64
}

// cacheEntry is a singleflight slot. done is created lazily (under the
// engine mutex) by the first waiter and closed by the computing goroutine
// once val/err are set — most jobs never attract a waiter, so the common
// path allocates no channel. complete is the mutex-guarded "val/err are
// readable" flag for waiters that arrive after computation finished.
type cacheEntry struct {
	done     chan struct{}
	complete bool
	val      any
	err      error
}

// New creates an engine with cfg.Workers slots (GOMAXPROCS when <= 0).
func New(cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	// The goroutine calling Run participates as one of the w workers (it
	// executes jobs inline whenever no pool slot is free), so only w-1
	// extra goroutines may run at once. Workers=1 is therefore fully
	// serial on the calling goroutine.
	e := &Engine{
		workers: w,
		sem:     make(chan struct{}, w-1),
		noCache: cfg.DisableCache,
		cache:   map[string]*cacheEntry{},
	}
	if !cfg.DisableCache {
		e.store = cfg.Store
	}
	return e
}

// Workers returns the concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Hits:        e.hits.Load(),
		Misses:      e.misses.Load(),
		Executed:    e.executed.Load(),
		Inline:      e.inline.Load(),
		StoreHits:   e.storeHits.Load(),
		StoreMisses: e.storeMisses.Load(),
	}
}

// Run executes jobs with at most Workers in flight and returns their
// results in submission order. It blocks until every job has finished or
// observed ctx cancellation. Run is safe for concurrent use and for
// nested calls from inside job functions. Jobs carrying an OnDone hook are
// additionally reported one by one, in completion order, as they resolve
// (see Job.OnDone); every hook has returned by the time Run does.
func (e *Engine) Run(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		select {
		case e.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-e.sem }()
				results[i] = e.exec(ctx, jobs[i])
				if jobs[i].OnDone != nil {
					jobs[i].OnDone(results[i])
				}
			}(i)
		default:
			// Pool saturated (or a nested Run inside a worker): execute on
			// this goroutine so submitters can never deadlock waiting for
			// their own sub-jobs.
			e.inline.Add(1)
			results[i] = e.exec(ctx, jobs[i])
			if jobs[i].OnDone != nil {
				jobs[i].OnDone(results[i])
			}
		}
	}
	wg.Wait()
	return results
}

// RunOne is the single-job convenience form of Run. A single job offers no
// fan-out, so it executes directly on the calling goroutine (the same
// caller-runs behavior Run exhibits when the pool is saturated) without
// Run's slice/waitgroup bookkeeping — nested sweep and simulation jobs
// take this path once per sweep.
func (e *Engine) RunOne(ctx context.Context, job Job) Result {
	r := e.exec(ctx, job)
	e.inline.Add(1)
	if job.OnDone != nil {
		job.OnDone(r)
	}
	return r
}

// exec runs one job through the cache.
func (e *Engine) exec(ctx context.Context, job Job) Result {
	if err := ctx.Err(); err != nil {
		return Result{ID: job.ID, Err: err}
	}
	if e.noCache || job.Key == "" {
		val, err := e.invoke(ctx, job)
		return Result{ID: job.ID, Value: val, Err: err}
	}

	for {
		e.mu.Lock()
		entry, ok := e.cache[job.Key]
		if !ok {
			entry = &cacheEntry{}
			e.cache[job.Key] = entry
			e.mu.Unlock()
			e.misses.Add(1)

			if e.store != nil {
				if v, ok := e.store.Get(job.Key); ok {
					e.storeHits.Add(1)
					entry.val = v
					e.finish(entry)
					return Result{ID: job.ID, Value: v, Cached: true}
				}
				e.storeMisses.Add(1)
			}

			// The store lookup may have blocked (slow disk, injected
			// latency); re-check the deadline before paying for the
			// computation. The cancellation path below evicts the entry so
			// waiters retry, same as a cancelled invoke.
			if err := ctx.Err(); err != nil {
				entry.err = err
			} else {
				entry.val, entry.err = e.invoke(ctx, job)
			}
			if isCancellation(entry.err) {
				// Do not poison the cache with a cancellation: drop the
				// entry (before marking it complete, so awakened waiters
				// re-look it up and find it gone) so a later run recomputes.
				e.mu.Lock()
				if e.cache[job.Key] == entry {
					delete(e.cache, job.Key)
				}
				e.mu.Unlock()
			} else if entry.err == nil && e.store != nil {
				// Persist only clean successes: errors may be transient and
				// cancelled jobs must never reach the disk (the -duration
				// rule and the memory cache's eviction both rely on it).
				e.store.Put(job.Key, entry.val)
			}
			e.finish(entry)
			return Result{ID: job.ID, Value: entry.val, Err: entry.err}
		}
		if entry.complete {
			// Computation already finished; val/err are stable.
			e.mu.Unlock()
			e.hits.Add(1)
			return Result{ID: job.ID, Value: entry.val, Err: entry.err, Cached: true}
		}
		if entry.done == nil {
			entry.done = make(chan struct{})
		}
		done := entry.done
		e.mu.Unlock()

		select {
		case <-done:
			if isCancellation(entry.err) && ctx.Err() == nil {
				// The computing submitter was cancelled, not us; the entry
				// has been evicted, so retry with our live context.
				continue
			}
			e.hits.Add(1)
			return Result{ID: job.ID, Value: entry.val, Err: entry.err, Cached: true}
		case <-ctx.Done():
			return Result{ID: job.ID, Err: ctx.Err()}
		}
	}
}

// finish marks entry's val/err as readable and wakes any waiters that
// materialized the lazy done channel.
func (e *Engine) finish(entry *cacheEntry) {
	e.mu.Lock()
	entry.complete = true
	if entry.done != nil {
		close(entry.done)
	}
	e.mu.Unlock()
}

// isCancellation reports whether err came from context cancellation or
// expiry rather than the job's own logic.
func isCancellation(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// invoke calls the job function, converting a panic into an error so one
// bad job cannot take down the whole sweep.
func (e *Engine) invoke(ctx context.Context, job Job) (val any, err error) {
	e.executed.Add(1)
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: job %q panicked: %v", job.ID, r)
		}
	}()
	return job.Fn(ctx)
}

// InvalidateCache drops every cached result.
func (e *Engine) InvalidateCache() {
	e.mu.Lock()
	e.cache = map[string]*cacheEntry{}
	e.mu.Unlock()
}

// CacheLen returns the number of cached keys (including in-flight ones).
func (e *Engine) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Map fans items out through the engine and collects the outputs in item
// order. key may be nil (no caching); id labels jobs for error reporting.
// The first error in item order is returned alongside the partial outputs.
func Map[In, Out any](ctx context.Context, e *Engine, items []In, key func(In) string, fn func(context.Context, In) (Out, error)) ([]Out, error) {
	jobs := make([]Job, len(items))
	for i, item := range items {
		item := item
		k := ""
		if key != nil {
			k = key(item)
		}
		// The item index identifies the job in error messages; it is
		// formatted lazily below rather than Sprintf-ed per submission.
		jobs[i] = Job{
			Key: k,
			Fn: func(ctx context.Context) (any, error) {
				return fn(ctx, item)
			},
		}
	}
	res := e.Run(ctx, jobs)
	out := make([]Out, len(items))
	var firstErr error
	for i, r := range res {
		if r.Err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("map[%d]: %w", i, r.Err)
			}
			continue
		}
		v, ok := r.Value.(Out)
		if !ok && r.Value != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("map[%d]: unexpected result type %T", i, r.Value)
			}
			continue
		}
		out[i] = v
	}
	return out, firstErr
}
