package diskcache

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// encodeEnvelope builds valid on-disk entry bytes for corpus seeding.
func encodeEnvelope(t testing.TB, key string, val any) []byte {
	t.Helper()
	var buf bytes.Buffer
	env := envelope{Version: envelopeVersion, Key: key, WrittenAt: time.Now().UnixNano(), Value: val}
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTruncatedEnvelopeAnyPrefixIsMiss walks every strict prefix of a
// valid entry — each one a possible partial write cut off by a crash —
// and requires a plain dropped-entry miss: never a panic, never an
// error, never a value.
func TestTruncatedEnvelopeAnyPrefixIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	data := encodeEnvelope(t, "k", testVal{N: 42, S: "answer"})
	path := filepath.Join(dir, fileName("k"))
	for n := 0; n < len(data); n++ {
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		v, ok, err := s.GetE("k")
		if ok || err != nil {
			t.Fatalf("prefix %d/%d: GetE = (%v, %v, %v), want miss", n, len(data), v, ok, err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("prefix %d: truncated entry not dropped", n)
		}
	}
	if st := s.Stats(); st.Dropped != uint64(len(data)) {
		t.Fatalf("Dropped = %d, want %d", st.Dropped, len(data))
	}
}

// FuzzEnvelopeRead feeds arbitrary bytes — seeded with a valid entry,
// bit-flipped variants, and classic junk — through the on-disk entry
// path. The decoder's contract under any input: no panic, no
// infrastructure error (garbage is a miss, not a fault), and when the
// read misses, the broken file is unlinked so the slot self-heals and
// the next Put round-trips.
func FuzzEnvelopeRead(f *testing.F) {
	valid := encodeEnvelope(f, "k", testVal{N: 42, S: "answer"})
	f.Add(valid)
	for _, pos := range []int{0, 1, len(valid) / 2, len(valid) - 1} {
		flipped := append([]byte(nil), valid...)
		flipped[pos] ^= 0x40
		f.Add(flipped)
	}
	f.Add(valid[:len(valid)/3])
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		s := open(t, dir, Options{})
		path := filepath.Join(dir, fileName("k"))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, ok, err := s.GetE("k")
		if err != nil {
			t.Fatalf("GetE returned an infrastructure error for decodable-or-garbage bytes: %v", err)
		}
		if !ok {
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("missed entry not dropped")
			}
		}
		// Whatever the bytes were, the slot must stay serviceable.
		want := testVal{N: 7, S: "heal"}
		if err := s.PutE("k", want); err != nil {
			t.Fatalf("PutE after read: %v", err)
		}
		if v, ok, err := s.GetE("k"); !ok || err != nil || v != want {
			t.Fatalf("round trip after read = (%v, %v, %v)", v, ok, err)
		}
	})
}
