package diskcache

import (
	"bytes"
	"errors"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var errSynthetic = errors.New("synthetic I/O failure")

// TestWrapPutErrorCountsWriteErr: a failing write hook is an
// infrastructure fault — counted, returned by PutE, and no entry file
// lands on disk.
func TestWrapPutErrorCountsWriteErr(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Hooks: Hooks{
		WrapPut: func(key string, encoded []byte) ([]byte, error) { return nil, errSynthetic },
	}})
	if err := s.PutE("k", testVal{N: 1}); !errors.Is(err, errSynthetic) {
		t.Fatalf("PutE = %v, want errSynthetic", err)
	}
	st := s.Stats()
	if st.WriteErrs != 1 || st.Puts != 0 || st.PutSkips != 0 {
		t.Fatalf("stats = %+v, want exactly one WriteErr", st)
	}
	if _, err := os.Stat(filepath.Join(dir, fileName("k"))); !os.IsNotExist(err) {
		t.Fatalf("entry file exists after failed put: %v", err)
	}
	if n, size := s.Size(); n != 0 || size != 0 {
		t.Fatalf("failed put indexed: %d entries, %d bytes", n, size)
	}
}

// TestWrapPutCorruptionSelfHeals: a hook that mangles the envelope on
// the way to disk produces an entry the reader drops as a miss — the
// decoder's self-healing, exercised end to end.
func TestWrapPutCorruptionSelfHeals(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Hooks: Hooks{
		WrapPut: func(key string, encoded []byte) ([]byte, error) {
			return encoded[:len(encoded)/2], nil // partial write
		},
	}})
	if err := s.PutE("k", testVal{N: 1}); err != nil {
		t.Fatalf("corrupting put failed: %v", err)
	}
	if v, ok, err := s.GetE("k"); ok || err != nil {
		t.Fatalf("GetE on truncated entry = (%v, %v, %v), want plain miss", v, ok, err)
	}
	st := s.Stats()
	if st.Dropped != 1 || st.WriteErrs != 0 {
		t.Fatalf("stats = %+v, want one Dropped, no WriteErrs", st)
	}
	if _, err := os.Stat(filepath.Join(dir, fileName("k"))); !os.IsNotExist(err) {
		t.Fatal("dropped entry still on disk")
	}
}

// TestWrapGetErrorIsFaultNotMiss: a failing read hook surfaces on
// GetE's error channel and leaves the entry intact — when the fault
// clears, the entry serves again without a recompute.
func TestWrapGetErrorIsFaultNotMiss(t *testing.T) {
	dir := t.TempDir()
	fail := true
	s := open(t, dir, Options{Hooks: Hooks{
		WrapGet: func(key string, raw []byte) ([]byte, error) {
			if fail {
				return nil, errSynthetic
			}
			return raw, nil
		},
	}})
	want := testVal{N: 7}
	if err := s.PutE("k", want); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetE("k"); ok || !errors.Is(err, errSynthetic) {
		t.Fatalf("GetE under failing hook = (ok=%v, err=%v), want fault", ok, err)
	}
	if st := s.Stats(); st.Dropped != 0 {
		t.Fatalf("fault dropped the entry: %+v", st)
	}
	fail = false
	if v, ok, err := s.GetE("k"); !ok || err != nil || v != want {
		t.Fatalf("GetE after fault cleared = (%v, %v, %v)", v, ok, err)
	}
}

// TestGetEUnreadableFileIsFault: a real filesystem error that is not
// NotExist (here: the entry path is a directory) comes back on the
// error channel, distinct from a miss.
func TestGetEUnreadableFileIsFault(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := os.Mkdir(filepath.Join(dir, fileName("k")), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetE("k"); ok || err == nil {
		t.Fatalf("GetE on unreadable entry = (ok=%v, err=%v), want fault", ok, err)
	}
	if _, ok, err := s.GetE("absent"); ok || err != nil {
		t.Fatalf("GetE on absent entry = (ok=%v, err=%v), want plain miss", ok, err)
	}
}

// TestWriteErrLoggedOnce: a dead disk fails at request rate; the log
// gets one line per failure kind while the counter keeps the tally.
func TestWriteErrLoggedOnce(t *testing.T) {
	var buf bytes.Buffer
	s := open(t, t.TempDir(), Options{
		Log: log.New(&buf, "", 0),
		Hooks: Hooks{
			WrapPut: func(key string, encoded []byte) ([]byte, error) { return nil, errSynthetic },
		},
	})
	for i := 0; i < 5; i++ {
		s.Put("k", testVal{N: i})
	}
	if st := s.Stats(); st.WriteErrs != 5 {
		t.Fatalf("WriteErrs = %d, want 5", st.WriteErrs)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 1 || !strings.Contains(buf.String(), "envelope write failed") {
		t.Fatalf("log = %q, want exactly one envelope-write line", buf.String())
	}
}

// TestPinSaveErrCountedAndLoggedOnce: pin-file persistence failing (the
// file's directory is gone) keeps the in-memory pins, counts every
// failure, and logs once.
func TestPinSaveErrCountedAndLoggedOnce(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	s := open(t, dir, Options{
		PinFile: filepath.Join(dir, "no-such-dir", "pins"),
		Log:     log.New(&buf, "", 0),
	})
	s.Pin("a")
	s.Pin("b")
	if st := s.Stats(); st.PinSaveErrs != 2 {
		t.Fatalf("PinSaveErrs = %d, want 2", st.PinSaveErrs)
	}
	if !s.Pinned("a") || !s.Pinned("b") {
		t.Fatal("in-memory pins lost after pin-file save failure")
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 1 || !strings.Contains(buf.String(), "pin file save failed") {
		t.Fatalf("log = %q, want exactly one pin-save line", buf.String())
	}
}

// TestUnencodableValueNotAWriteErr: encode failures stay PutSkips (a
// value problem), never WriteErrs (a disk problem) — the breaker must
// not trip on a caller handing over a channel.
func TestUnencodableValueNotAWriteErr(t *testing.T) {
	var buf bytes.Buffer
	s := open(t, t.TempDir(), Options{Log: log.New(&buf, "", 0)})
	if err := s.PutE("k", make(chan int)); err != nil {
		t.Fatalf("unencodable PutE returned %v, want nil", err)
	}
	st := s.Stats()
	if st.PutSkips != 1 || st.WriteErrs != 0 {
		t.Fatalf("stats = %+v, want one PutSkip, no WriteErrs", st)
	}
	if !strings.Contains(buf.String(), "unencodable") {
		t.Fatalf("log = %q, want unencodable-value line", buf.String())
	}
}
