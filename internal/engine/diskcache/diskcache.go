// Package diskcache persists engine results across processes: a
// content-addressed, disk-backed store keyed exactly like the engine's
// in-memory cache (engine.Key strings), intended to be layered under the
// singleflight memory cache via engine.Config.Store.
//
// Entry format. Each entry is one file named after the FNV-1a hash of its
// key, holding a gob stream of a versioned envelope {Version, Key,
// WrittenAt, Value}. Value is an interface; every concrete type that flows
// through the store must be gob.Register-ed by the package that produces it
// (experiments registers *report.Document, report registers Element,
// workload registers SimRun, core registers its sweep evaluations). Bump
// envelopeVersion whenever the envelope layout or the meaning of cached
// values changes: readers treat any other version as a miss and drop the
// file, so stale caches self-heal instead of poisoning new binaries.
//
// Failure model. The store is strictly best-effort and must never fail a
// job: corrupt, truncated, stale-version, or key-mismatched entries are
// misses (and are unlinked so the slot is rewritten); unencodable values
// are skipped on Put. Writes go to a temp file in the cache directory and
// are renamed into place, so concurrent processes sharing one directory
// see either the old entry or the complete new one, never a torn write.
//
// Capacity. The store keeps the total entry size under a byte cap
// (Options.MaxBytes, default DefaultMaxBytes), evicting the
// least-recently-used entries (by file mtime, which Get refreshes) after
// each write. The cap is enforced per process: concurrent writers may
// transiently overshoot, which the next Put repairs. Pin exempts
// individual keys from eviction.
//
// Expiry. Options.TTL bounds entry lifetime from write time (WrittenAt in
// the envelope, so LRU recency bumps never extend a lifetime); zero means
// entries never expire. An expired entry reads as a miss and is unlinked —
// the slot self-heals on the next Put. Expiry applies to pinned entries
// too: Pin only shields an entry from LRU eviction, so an expired-but-
// pinned entry survives capacity pressure until its key is recomputed and
// rewritten in place.
package diskcache

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	// envelopeVersion tags every entry file; see the package comment for
	// when to bump it. v2 added WrittenAt (per-entry TTL support), so v1
	// caches drain automatically.
	envelopeVersion = 2
	// suffix marks entry files; anything else in the directory is ignored.
	suffix = ".gob"
	// tmpPrefix/tmpSuffix mark in-flight Put temp files. Open sweeps ones
	// older than tmpMaxAge — leftovers from killed processes — while
	// sparing recent ones that a live process may be about to rename.
	tmpPrefix = "put-"
	tmpSuffix = ".tmp"
	tmpMaxAge = time.Hour
)

// DefaultMaxBytes is the byte cap applied when Options.MaxBytes <= 0.
const DefaultMaxBytes = 1 << 30

// envelope is the on-disk entry layout.
type envelope struct {
	Version int
	Key     string
	// WrittenAt is the Put wall-clock time in Unix nanoseconds; TTL expiry
	// is measured against it, never against the file's (LRU-bumped) mtime.
	WrittenAt int64
	Value     any
}

// Options tunes Open.
type Options struct {
	// MaxBytes caps the total size of entry files; <= 0 selects
	// DefaultMaxBytes.
	MaxBytes int64
	// TTL expires entries this long after they were written; zero (the
	// default) never expires. Expired entries read as misses and are
	// unlinked so the slot self-heals on the next Put.
	TTL time.Duration
	// PinFile, when non-empty, makes the pin set survive restarts: Open
	// re-pins every key listed in the file, and Pin/Unpin rewrite it
	// atomically (temp+rename, keys sorted, one key per line; blank lines
	// and lines starting with '#' are ignored). Keys containing a newline
	// cannot be represented and are pinned in memory only — engine keys
	// (16 hex digits) are always representable. The file lives wherever
	// the path points, typically next to the cache directory, so several
	// stores may share a directory while keeping distinct pin sets.
	PinFile string
	// Log, when non-nil, receives one line the first time each failure
	// kind occurs (envelope write, pin-file save, unencodable value) —
	// once per kind, not per operation, so a dead disk degrades quietly
	// instead of flooding stderr at request rate. The counters in Stats
	// carry the ongoing tally.
	Log *log.Logger
	// Hooks, when set, intercept entry-file I/O. They exist for
	// deterministic fault injection (internal/faults wires them) and are
	// no-ops when nil.
	Hooks Hooks
}

// Hooks intercepts the store's entry-file I/O. Both funcs may return
// the input unchanged (pass-through), mutated bytes (corruption — the
// store writes or decodes whatever comes back, exercising the envelope
// decoder's self-healing), or an error (the operation fails as an
// infrastructure fault: an ENOSPC-style write failure, an unreadable
// file). Hooks never see keys' values or alter which key an operation
// targets.
type Hooks struct {
	// WrapPut runs on the encoded envelope bytes before the temp-file
	// write. An error fails the Put (counted in Stats.WriteErrs).
	WrapPut func(key string, encoded []byte) ([]byte, error)
	// WrapGet runs on the raw bytes read for an entry before decoding.
	// An error fails the Get as an infrastructure fault, not a miss.
	WrapGet func(key string, raw []byte) ([]byte, error)
}

// Stats counts store traffic since Open. Lookup hit/miss counts live in
// engine.Stats (StoreHits/StoreMisses); these are the store's own write-
// and health-side counters.
type Stats struct {
	Puts        uint64 // entries written
	PutSkips    uint64 // writes skipped (unencodable value — a value problem, not a store fault)
	WriteErrs   uint64 // envelope writes that failed on file I/O (temp create/write/close/rename)
	PinSaveErrs uint64 // pin-file rewrites that failed on file I/O (in-memory pins kept)
	Evictions   uint64 // entries removed to stay under the byte cap
	Expired     uint64 // entries past their TTL removed by Get
	Dropped     uint64 // corrupt/stale/mismatched entries removed by Get
}

// entry is the in-memory index record for one entry file.
type entry struct {
	size  int64
	mtime time.Time
}

// Store is a disk-backed engine.Store. It is safe for concurrent use, and
// multiple Stores (in one or several processes) may share a directory.
type Store struct {
	dir string
	max int64
	ttl time.Duration

	log   *log.Logger
	hooks Hooks
	// log-once guards: a failing disk fails at request rate, but one
	// line per failure kind is all an operator needs — Stats carries the
	// count.
	logEncodeOnce sync.Once
	logWriteOnce  sync.Once
	logPinOnce    sync.Once

	mu      sync.Mutex
	entries map[string]entry // file name -> info
	pinned  map[string]bool  // file names exempt from LRU eviction
	pinKeys map[string]bool  // original key strings, for pin-file rewrite
	pinFile string           // "" = pin set is process-local
	pinGen  uint64           // bumped (under mu) on every pin-set change
	total   int64
	stats   Stats

	// pinSaveMu serializes pin-file writes, which happen outside mu so
	// pin persistence never blocks Get/Put traffic. pinSavedGen (guarded
	// by pinSaveMu) is the generation of the snapshot on disk; a writer
	// holding an older snapshot than the one already written skips, so
	// racing writers always land newest-last.
	pinSaveMu   sync.Mutex
	pinSavedGen uint64
}

// Open creates dir if needed, indexes any existing entries, and returns a
// ready store.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	max := opts.MaxBytes
	if max <= 0 {
		max = DefaultMaxBytes
	}
	s := &Store{dir: dir, max: max, ttl: opts.TTL, entries: map[string]entry{},
		pinned: map[string]bool{}, pinKeys: map[string]bool{}, pinFile: opts.PinFile,
		log: opts.Log, hooks: opts.Hooks}
	if err := s.loadPinFile(); err != nil {
		return nil, err
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) && strings.HasSuffix(name, tmpSuffix) {
			// Orphaned temp from a killed writer: invisible to the byte
			// cap, so reap it once it is clearly abandoned.
			if fi, err := de.Info(); err == nil && time.Since(fi.ModTime()) > tmpMaxAge {
				_ = os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		if !strings.HasSuffix(name, suffix) {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue // raced with another process's eviction
		}
		s.entries[name] = entry{size: fi.Size(), mtime: fi.ModTime()}
		s.total += fi.Size()
	}
	return s, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Size returns the indexed entry count and total bytes.
func (s *Store) Size() (entries int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries), s.total
}

// fileName maps a cache key to its entry file name. Keys are hashed so any
// key string is filesystem-safe; the envelope stores the full key, so a
// hash collision reads as a miss, never as a wrong value.
func fileName(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("%016x%s", h.Sum64(), suffix)
}

// Get implements engine.Store: it returns the stored value for key, or
// (nil, false) on any miss — absent, unreadable, corrupt, stale-version,
// or key-mismatched entries all read as misses, and the broken ones are
// unlinked so the next Put rewrites them.
func (s *Store) Get(key string) (any, bool) {
	v, ok, _ := s.GetE(key)
	return v, ok
}

// GetE is Get with the infrastructure-fault channel exposed: a missing
// entry is (nil, false, nil), but an unreadable file or a failing read
// hook is (nil, false, err) — the signal the circuit breaker in
// internal/faults trips on. Corrupt, stale, or mismatched entries stay
// plain misses: they are dropped and self-heal on the next Put, which
// is the store working as designed, not failing.
func (s *Store) GetE(key string) (any, bool, error) {
	name := fileName(key)
	path := filepath.Join(s.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	if s.hooks.WrapGet != nil {
		if data, err = s.hooks.WrapGet(key, data); err != nil {
			return nil, false, err
		}
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil ||
		env.Version != envelopeVersion || env.Key != key {
		s.drop(name, &s.stats.Dropped)
		return nil, false, nil
	}
	if s.ttl > 0 && time.Since(time.Unix(0, env.WrittenAt)) > s.ttl {
		// Past its lifetime: a miss that self-heals — the slot is freed now
		// and rewritten by the Put that follows the recomputation. Pinning
		// does not rescue expired entries; it only shields live ones from
		// LRU eviction.
		s.drop(name, &s.stats.Expired)
		return nil, false, nil
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now) // best-effort LRU recency bump
	s.mu.Lock()
	if e, ok := s.entries[name]; ok {
		e.mtime = now
		s.entries[name] = e
	}
	s.mu.Unlock()
	return env.Value, true, nil
}

// drop unlinks a dead entry (broken or expired), forgets it, and bumps the
// given counter.
func (s *Store) drop(name string, counter *uint64) {
	_ = os.Remove(filepath.Join(s.dir, name))
	s.mu.Lock()
	if e, ok := s.entries[name]; ok {
		s.total -= e.size
		delete(s.entries, name)
	}
	*counter++
	s.mu.Unlock()
}

// Pin exempts key's entry — present or future — from LRU eviction, so a
// result worth keeping warm (a full-run artifact, a seed configuration)
// survives capacity pressure from bulkier neighbors. Pinned entries still
// count toward the byte cap (many pins can hold the store above it, which
// only more Puts of pinned keys can worsen) and still expire under TTL:
// expiry reads as a miss whose recomputation rewrites the slot in place.
// With a pin file configured (Options.PinFile), the pin additionally
// persists: the named file is rewritten so the key is re-pinned by the
// next Open, making pinned working sets restart-surviving. To pin many
// keys, use PinAll — one pin-file write instead of one per key.
func (s *Store) Pin(key string) {
	s.PinAll([]string{key})
}

// PinAll pins every key in one shot: the pin set updates under the lock
// once and the pin file (when configured) is rewritten once, from a
// snapshot, outside the entry mutex — a 4096-key working set is one
// sorted file write, not 4096, and concurrent Get/Put traffic never
// waits behind pin-file I/O.
func (s *Store) PinAll(keys []string) {
	s.TryPinAll(keys, 0)
}

// TryPinAll atomically pins every key iff doing so keeps the total
// distinct pinned-key count within maxTotal (<= 0 means no limit).
// Already-pinned keys cost nothing — re-pinning a working set at the cap
// still succeeds — and a refusal changes nothing. Check and pin happen
// under one lock hold, so concurrent callers cannot jointly overshoot
// the cap. It reports whether the keys were pinned.
func (s *Store) TryPinAll(keys []string, maxTotal int) bool {
	s.mu.Lock()
	if maxTotal > 0 {
		fresh := 0
		seen := make(map[string]bool, len(keys))
		for _, key := range keys {
			if !s.pinKeys[key] && !seen[key] {
				seen[key] = true
				fresh++
			}
		}
		if len(s.pinKeys)+fresh > maxTotal {
			s.mu.Unlock()
			return false
		}
	}
	changed := false
	for _, key := range keys {
		s.pinned[fileName(key)] = true
		if !s.pinKeys[key] {
			s.pinKeys[key] = true
			changed = true
		}
	}
	snap, gen := s.pinSnapshotLocked(changed)
	s.mu.Unlock()
	s.writePinFile(snap, gen)
	return true
}

// Unpin makes key's entry an ordinary LRU citizen again (and removes it
// from the pin file, when one is configured).
func (s *Store) Unpin(key string) {
	s.mu.Lock()
	delete(s.pinned, fileName(key))
	changed := s.pinKeys[key]
	delete(s.pinKeys, key)
	snap, gen := s.pinSnapshotLocked(changed)
	s.mu.Unlock()
	s.writePinFile(snap, gen)
}

// PinnedCount returns the number of distinct pinned keys, including pins
// loaded from the pin file and pins for entries that do not exist yet.
func (s *Store) PinnedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pinKeys)
}

// loadPinFile re-pins every key recorded by a previous process. A missing
// file is a fresh start, not an error; an unreadable one fails Open
// loudly — silently dropping a pin set would defeat its purpose.
func (s *Store) loadPinFile() error {
	if s.pinFile == "" {
		return nil
	}
	data, err := os.ReadFile(s.pinFile)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("diskcache: pin file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		key := strings.TrimSpace(line)
		if key == "" || strings.HasPrefix(key, "#") {
			continue
		}
		s.pinKeys[key] = true
		s.pinned[fileName(key)] = true
	}
	return nil
}

// pinSnapshotLocked captures the representable pin set and stamps it
// with a fresh generation when a write is due; gen 0 means nothing to
// write (no change, or no pin file configured). Keys containing a
// newline cannot be represented line-wise and stay process-local.
func (s *Store) pinSnapshotLocked(changed bool) ([]string, uint64) {
	if !changed || s.pinFile == "" {
		return nil, 0
	}
	s.pinGen++
	keys := make([]string, 0, len(s.pinKeys))
	for k := range s.pinKeys {
		if !strings.Contains(k, "\n") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, s.pinGen
}

// writePinFile persists one pin-set snapshot: sorted for deterministic
// bytes, written to a temp file and renamed into place so a crash never
// leaves a torn pin set. It runs outside the entry mutex — pin-file I/O
// never stalls Get/Put — and snapshots carry generations so racing
// writers land newest-last: a snapshot older than the one already on
// disk is skipped, never renamed over it. Because map mutation and
// snapshot share one lock hold, the highest generation always reflects
// the final in-memory set. Like Put, persistence is best-effort — an I/O
// failure keeps the in-memory pins and is counted as a PinSaveErr.
func (s *Store) writePinFile(keys []string, gen uint64) {
	if gen == 0 {
		return
	}
	s.pinSaveMu.Lock()
	defer s.pinSaveMu.Unlock()
	if gen <= s.pinSavedGen {
		return
	}
	var buf bytes.Buffer
	buf.WriteString("# mergescale disk-cache pin set: one engine key per line.\n")
	for _, k := range keys {
		buf.WriteString(k)
		buf.WriteByte('\n')
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.pinFile), "pins-*"+tmpSuffix)
	if err != nil {
		s.pinSaveFail(err)
		return
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		_ = os.Remove(tmp.Name())
		s.pinSaveFail(err)
		return
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		s.pinSaveFail(err)
		return
	}
	if err := os.Rename(tmp.Name(), s.pinFile); err != nil {
		_ = os.Remove(tmp.Name())
		s.pinSaveFail(err)
		return
	}
	s.pinSavedGen = gen
}

// pinSaveFail records one pin-file rewrite failure: counted always,
// logged once. The in-memory pin set is untouched, so pins keep working
// for this process and only restart survival is at risk.
func (s *Store) pinSaveFail(err error) {
	s.mu.Lock()
	s.stats.PinSaveErrs++
	s.mu.Unlock()
	s.logPinOnce.Do(func() {
		s.logf("diskcache: pin file save failed (in-memory pins kept; further failures counted silently): %v", err)
	})
}

// Pinned reports whether key is currently pinned.
func (s *Store) Pinned(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pinned[fileName(key)]
}

// Put implements engine.Store: it persists val under key with an atomic
// write-rename, then evicts least-recently-used entries until the store is
// back under its byte cap. Failures are recorded in Stats and otherwise
// silent — the cache is best-effort by contract.
func (s *Store) Put(key string, val any) { _ = s.PutE(key, val) }

// PutE is Put with the infrastructure-fault channel exposed: file-I/O
// failures (temp create/write/close/rename, or a failing write hook)
// are counted in Stats.WriteErrs and returned — the breaker's trip
// signal. An unencodable value returns nil: that is a property of the
// value, not of the disk, and is counted as a PutSkip instead.
func (s *Store) PutE(key string, val any) error {
	var buf bytes.Buffer
	env := envelope{Version: envelopeVersion, Key: key, WrittenAt: time.Now().UnixNano(), Value: val}
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		s.mu.Lock()
		s.stats.PutSkips++
		s.mu.Unlock()
		s.logEncodeOnce.Do(func() { s.logf("diskcache: put skipped (unencodable value; further skips counted silently): %v", err) })
		return nil
	}
	data := buf.Bytes()
	if s.hooks.WrapPut != nil {
		var err error
		if data, err = s.hooks.WrapPut(key, data); err != nil {
			return s.writeFail(err)
		}
	}
	name := fileName(key)
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*"+tmpSuffix)
	if err != nil {
		return s.writeFail(err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		_ = os.Remove(tmp.Name())
		return s.writeFail(err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return s.writeFail(err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		_ = os.Remove(tmp.Name())
		return s.writeFail(err)
	}

	size := int64(len(data))
	s.mu.Lock()
	if old, ok := s.entries[name]; ok {
		s.total -= old.size
	}
	s.entries[name] = entry{size: size, mtime: time.Now()}
	s.total += size
	s.stats.Puts++
	victims := s.evictLocked(name)
	s.mu.Unlock()
	for _, v := range victims {
		_ = os.Remove(filepath.Join(s.dir, v))
	}
	return nil
}

// writeFail records one envelope write failure: counted always, logged
// once.
func (s *Store) writeFail(err error) error {
	s.mu.Lock()
	s.stats.WriteErrs++
	s.mu.Unlock()
	s.logWriteOnce.Do(func() { s.logf("diskcache: envelope write failed (further failures counted silently): %v", err) })
	return err
}

// logf emits one line to the configured logger, discarding when none.
func (s *Store) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

// evictLocked removes index records oldest-first (mtime, then name for a
// deterministic tie-break) until total <= max, sparing keep — the entry
// just written, so a single oversized value cannot evict itself into a
// write/evict loop — and every pinned entry. It returns the file names for
// the caller to unlink outside the lock.
func (s *Store) evictLocked(keep string) []string {
	if s.total <= s.max {
		return nil
	}
	names := make([]string, 0, len(s.entries))
	for n := range s.entries {
		if n != keep && !s.pinned[n] {
			names = append(names, n)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		ei, ej := s.entries[names[i]], s.entries[names[j]]
		if !ei.mtime.Equal(ej.mtime) {
			return ei.mtime.Before(ej.mtime)
		}
		return names[i] < names[j]
	})
	var victims []string
	for _, n := range names {
		if s.total <= s.max {
			break
		}
		s.total -= s.entries[n].size
		delete(s.entries, n)
		s.stats.Evictions++
		victims = append(victims, n)
	}
	return victims
}
