package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// pinPath returns a pin-file path inside its own directory, so tests can
// mix stores with and without persistence over the same cache dir.
func pinPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "pins.txt")
}

// TestPinFileSurvivesReopen: pins recorded through a pin file re-apply on
// the next Open — including pins taken before the entry existed, which
// must shield the entry Put later by the new process.
func TestPinFileSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	pf := pinPath(t)
	s := open(t, dir, Options{PinFile: pf})
	s.Put("present", testVal{N: 1})
	s.Pin("present")
	s.Pin("future") // no entry yet; the pin must still persist

	r := open(t, dir, Options{PinFile: pf})
	if !r.Pinned("present") || !r.Pinned("future") {
		t.Fatalf("reopened store lost pins: present=%v future=%v", r.Pinned("present"), r.Pinned("future"))
	}
	// The "future" pin protects an entry written by the new process.
	r.Put("future", testVal{N: 2})
	if _, ok := r.Get("future"); !ok {
		t.Fatal("pinned-then-put entry missing")
	}
}

// TestUnpinRewritesPinFile: Unpin removes the key durably — a reopen must
// not resurrect it.
func TestUnpinRewritesPinFile(t *testing.T) {
	dir := t.TempDir()
	pf := pinPath(t)
	s := open(t, dir, Options{PinFile: pf})
	s.Pin("a")
	s.Pin("b")
	s.Unpin("a")

	r := open(t, dir, Options{PinFile: pf})
	if r.Pinned("a") {
		t.Fatal("unpinned key resurrected by reopen")
	}
	if !r.Pinned("b") {
		t.Fatal("unrelated pin lost by Unpin rewrite")
	}
}

// TestPinFileFormat: the file is line-oriented, sorted, and commented —
// hand-editable — and the loader skips comments and blank lines.
func TestPinFileFormat(t *testing.T) {
	dir := t.TempDir()
	pf := pinPath(t)
	s := open(t, dir, Options{PinFile: pf})
	s.Pin("zebra")
	s.Pin("apple")

	data, err := os.ReadFile(pf)
	if err != nil {
		t.Fatal(err)
	}
	want := "# mergescale disk-cache pin set: one engine key per line.\napple\nzebra\n"
	if string(data) != want {
		t.Fatalf("pin file = %q, want %q", data, want)
	}

	// A hand-written file with comments, blanks and whitespace loads.
	hand := "# my pins\n\n  spaced-key  \n# trailing comment\nplain\n"
	if err := os.WriteFile(pf, []byte(hand), 0o644); err != nil {
		t.Fatal(err)
	}
	r := open(t, dir, Options{PinFile: pf})
	if !r.Pinned("spaced-key") || !r.Pinned("plain") {
		t.Fatal("hand-edited pin file not honored")
	}
	if r.Pinned("# my pins") {
		t.Fatal("comment line treated as a key")
	}
}

// TestPinFileNewlineKeysStayLocal: a key containing a newline cannot be
// one line of the file; it pins in-process but is excluded from the file
// rather than corrupting it.
func TestPinFileNewlineKeysStayLocal(t *testing.T) {
	dir := t.TempDir()
	pf := pinPath(t)
	s := open(t, dir, Options{PinFile: pf})
	s.Pin("evil\nkey")
	s.Pin("good")
	if !s.Pinned("evil\nkey") {
		t.Fatal("newline key not pinned in-process")
	}
	data, err := os.ReadFile(pf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "evil") {
		t.Fatalf("newline key leaked into the pin file: %q", data)
	}
	r := open(t, dir, Options{PinFile: pf})
	if r.Pinned("evil\nkey") {
		t.Fatal("newline key persisted despite being unrepresentable")
	}
	if !r.Pinned("good") {
		t.Fatal("representable key lost")
	}
}

// TestPinFileUnreadableFailsOpen: an existing-but-unreadable pin file
// fails Open loudly — silently dropping a pin set would defeat it.
func TestPinFileUnreadableFailsOpen(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: permission bits are not enforced")
	}
	dir := t.TempDir()
	pf := pinPath(t)
	if err := os.WriteFile(pf, []byte("key\n"), 0o000); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{PinFile: pf}); err == nil {
		t.Fatal("Open succeeded with an unreadable pin file")
	}
}

// TestPinFileMissingIsFreshStart: no file, no error, no pins.
func TestPinFileMissingIsFreshStart(t *testing.T) {
	s := open(t, t.TempDir(), Options{PinFile: pinPath(t)})
	if s.Pinned("anything") {
		t.Fatal("fresh store reports pins")
	}
}

// TestPinAllPersistsBulkSet: a bulk pin lands every key in memory and in
// the pin file in one shot — the path POST /sweep and `mergescale sweep`
// use for whole grids.
func TestPinAllPersistsBulkSet(t *testing.T) {
	dir := t.TempDir()
	pf := pinPath(t)
	s := open(t, dir, Options{PinFile: pf})
	keys := []string{"k1", "k2", "k3", "k2"} // duplicate must not double-count
	s.PinAll(keys)
	if n := s.PinnedCount(); n != 3 {
		t.Fatalf("PinnedCount = %d after PinAll of 3 distinct keys, want 3", n)
	}
	r := open(t, dir, Options{PinFile: pf})
	for _, k := range []string{"k1", "k2", "k3"} {
		if !r.Pinned(k) {
			t.Fatalf("reopened store lost bulk pin %q", k)
		}
	}
}

// TestTryPinAllCap: the capped pin is all-or-nothing and atomic — an
// over-cap set changes nothing, already-pinned keys are free so a working
// set re-pins at the cap, and disjoint keys past the cap are refused.
func TestTryPinAllCap(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if !s.TryPinAll([]string{"a", "b", "c"}, 3) {
		t.Fatal("in-cap TryPinAll refused")
	}
	if n := s.PinnedCount(); n != 3 {
		t.Fatalf("PinnedCount = %d, want 3", n)
	}
	if s.TryPinAll([]string{"d"}, 3) {
		t.Fatal("over-cap TryPinAll accepted")
	}
	if s.Pinned("d") || s.PinnedCount() != 3 {
		t.Fatal("refused TryPinAll still changed the pin set")
	}
	// Re-pinning the existing set at the cap is free.
	if !s.TryPinAll([]string{"a", "b", "c"}, 3) {
		t.Fatal("re-pin of existing keys at cap refused")
	}
	// A mixed set counts only its fresh keys.
	if s.TryPinAll([]string{"a", "d"}, 3) {
		t.Fatal("mixed over-cap TryPinAll accepted")
	}
	if !s.TryPinAll([]string{"a", "d"}, 4) {
		t.Fatal("mixed in-cap TryPinAll refused")
	}
	if n := s.PinnedCount(); n != 4 {
		t.Fatalf("PinnedCount = %d, want 4", n)
	}
}

// TestConcurrentPinsConvergeOnDisk: concurrent Pin/PinAll callers must
// leave the pin file holding the full final set — the generation-ordered
// writer may skip stale snapshots but never persist one over a newer one.
// Runs under -race in CI.
func TestConcurrentPinsConvergeOnDisk(t *testing.T) {
	dir := t.TempDir()
	pf := pinPath(t)
	s := open(t, dir, Options{PinFile: pf})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if i%2 == 0 {
					s.Pin(key)
				} else {
					s.PinAll([]string{key})
				}
			}
		}()
	}
	wg.Wait()
	r := open(t, dir, Options{PinFile: pf})
	for g := 0; g < 8; g++ {
		for i := 0; i < 16; i++ {
			key := fmt.Sprintf("g%d-k%d", g, i)
			if !r.Pinned(key) {
				t.Fatalf("pin file lost %q after concurrent pinning", key)
			}
		}
	}
	if n := r.PinnedCount(); n != 8*16 {
		t.Fatalf("reopened PinnedCount = %d, want %d", n, 8*16)
	}
}

// TestPinFileKilledMidRewrite models a process killed between the temp
// write and the rename: the abandoned pins-*.tmp must never shadow the
// real pin file, Open must succeed, and the next pin-set change must
// rewrite the real file cleanly.
func TestPinFileKilledMidRewrite(t *testing.T) {
	dir := t.TempDir()
	pf := pinPath(t)
	s := open(t, dir, Options{PinFile: pf})
	s.Pin("alive")

	// The killed writer's leftover: a half-finished snapshot that claims
	// a different pin set, sitting where writePinFile stages temp files.
	stale := filepath.Join(filepath.Dir(pf), "pins-stale"+tmpSuffix)
	if err := os.WriteFile(stale, []byte("ghost\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, Options{PinFile: pf})
	if !r.Pinned("alive") {
		t.Fatal("real pin file not honored with stale temp present")
	}
	if r.Pinned("ghost") {
		t.Fatal("stale temp file shadowed the real pin set")
	}
	if st := r.Stats(); st.PinSaveErrs != 0 {
		t.Fatalf("reopen under stale temp counted errors: %+v", st)
	}

	// The next change rewrites the real file; a further reopen sees it.
	r.Pin("later")
	rr := open(t, dir, Options{PinFile: pf})
	if !rr.Pinned("alive") || !rr.Pinned("later") || rr.Pinned("ghost") {
		t.Fatalf("post-crash rewrite wrong: alive=%v later=%v ghost=%v",
			rr.Pinned("alive"), rr.Pinned("later"), rr.Pinned("ghost"))
	}
}
