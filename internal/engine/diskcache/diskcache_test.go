package diskcache

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testVal is the cached payload type used throughout the tests.
type testVal struct {
	N int
	S string
}

func init() { gob.Register(testVal{}) }

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	want := testVal{N: 42, S: "answer"}
	s.Put("key-1", want)
	got, ok := s.Get("key-1")
	if !ok {
		t.Fatal("fresh entry missed")
	}
	if got != want {
		t.Fatalf("got %#v, want %#v", got, want)
	}
	if st := s.Stats(); st.Puts != 1 || st.PutSkips != 0 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if _, ok := s.Get("absent"); ok {
		t.Error("absent key hit")
	}
}

// TestReopenSeesEntries is the cross-process shape: a second Store over
// the same directory serves the first one's entries and accounts for
// their size.
func TestReopenSeesEntries(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, Options{})
	s1.Put("k", testVal{N: 1})

	s2 := open(t, dir, Options{})
	if v, ok := s2.Get("k"); !ok || v != (testVal{N: 1}) {
		t.Fatalf("reopened store: %v/%v", v, ok)
	}
	entries, size := s2.Size()
	if entries != 1 || size == 0 {
		t.Errorf("reopened index = %d entries / %d bytes", entries, size)
	}
}

// TestCorruptedEntryIsMiss overwrites an entry with garbage: the read must
// be a clean miss, the broken file must be unlinked, and a subsequent Put
// must repopulate the slot.
func TestCorruptedEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	s.Put("k", testVal{N: 1})
	path := filepath.Join(dir, fileName("k"))
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get("k"); ok {
		t.Fatal("corrupt entry returned a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry not unlinked: %v", err)
	}
	if st := s.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}

	s.Put("k", testVal{N: 2})
	if v, ok := s.Get("k"); !ok || v != (testVal{N: 2}) {
		t.Fatalf("slot not rewritten after corruption: %v/%v", v, ok)
	}
}

// TestTruncatedEntryIsMiss cuts an entry short mid-stream.
func TestTruncatedEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	s.Put("k", testVal{N: 1, S: "long enough to truncate meaningfully"})
	path := filepath.Join(dir, fileName("k"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("truncated entry returned a hit")
	}
	if st := s.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

// writeEnvelope hand-crafts an entry file, bypassing Put.
func writeEnvelope(t *testing.T, dir string, name string, env envelope) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestVersionMismatchIsMiss: an entry from a future (or past) envelope
// version reads as a miss and is dropped so the slot self-heals.
func TestVersionMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	writeEnvelope(t, dir, fileName("k"), envelope{Version: envelopeVersion + 1, Key: "k", Value: testVal{N: 9}})

	if _, ok := s.Get("k"); ok {
		t.Fatal("stale-version entry returned a hit")
	}
	if _, err := os.Stat(filepath.Join(dir, fileName("k"))); !os.IsNotExist(err) {
		t.Error("stale-version entry not unlinked")
	}
	if st := s.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

// TestKeyMismatchIsMiss: an envelope whose stored key differs from the
// requested one (hash collision or tampering) must read as a miss, never
// as the wrong value.
func TestKeyMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	writeEnvelope(t, dir, fileName("k"), envelope{Version: envelopeVersion, Key: "other", Value: testVal{N: 9}})
	if _, ok := s.Get("k"); ok {
		t.Fatal("key-mismatched entry returned a hit")
	}
}

// TestUnencodableValueSkipped: values gob cannot encode (a channel) are
// skipped, counted, and never crash the put path.
func TestUnencodableValueSkipped(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	s.Put("k", make(chan int))
	if _, ok := s.Get("k"); ok {
		t.Fatal("unencodable value hit")
	}
	if st := s.Stats(); st.Puts != 0 || st.PutSkips != 1 {
		t.Errorf("stats = %+v, want 0 puts / 1 skip", st)
	}
}

// TestEvictionKeepsNewest caps the store far below three entries: the
// oldest entries must be evicted, the just-written one spared, and the
// index totals must stay consistent.
func TestEvictionKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxBytes: 1})
	s.Put("a", testVal{N: 1})
	// Distinct mtimes make the LRU order unambiguous even on coarse
	// filesystem timestamp granularity.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, fileName("a")), past, past); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	e := s.entries[fileName("a")]
	e.mtime = past
	s.entries[fileName("a")] = e
	s.mu.Unlock()

	s.Put("b", testVal{N: 2})

	if _, ok := s.Get("a"); ok {
		t.Error("oldest entry survived eviction")
	}
	if v, ok := s.Get("b"); !ok || v != (testVal{N: 2}) {
		t.Error("just-written entry was evicted")
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	entries, _ := s.Size()
	if entries != 1 {
		t.Errorf("index holds %d entries, want 1", entries)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 1 {
		t.Errorf("directory holds %d files, want 1", len(des))
	}
}

// TestOpenReapsAbandonedTempFiles: temp files orphaned by a killed writer
// are swept on Open once stale, while fresh ones (a live writer mid-Put)
// are spared.
func TestOpenReapsAbandonedTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, tmpPrefix+"dead"+tmpSuffix)
	fresh := filepath.Join(dir, tmpPrefix+"live"+tmpSuffix)
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	open(t, dir, Options{})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file reaped: %v", err)
	}
}

// TestGetRefreshesRecency: a Get must protect an entry from the next
// eviction round (LRU, not FIFO).
func TestGetRefreshesRecency(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxBytes: 1 << 20})
	s.Put("a", testVal{N: 1})
	_, one := s.Size() // size of one entry (a, b and c encode identically)
	s.Put("b", testVal{N: 2})
	// Age both, then touch "a" via Get so "b" becomes the LRU victim.
	past := time.Now().Add(-time.Hour)
	for _, k := range []string{"a", "b"} {
		if err := os.Chtimes(filepath.Join(dir, fileName(k)), past, past); err != nil {
			t.Fatal(err)
		}
		s.mu.Lock()
		e := s.entries[fileName(k)]
		e.mtime = past
		s.entries[fileName(k)] = e
		s.mu.Unlock()
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("setup get missed")
	}
	s.mu.Lock()
	s.max = 2*one + 8 // room for exactly two entries
	s.mu.Unlock()
	s.Put("c", testVal{N: 3})

	if _, ok := s.Get("a"); !ok {
		t.Error("recently-read entry was evicted before the LRU one")
	}
	if _, ok := s.Get("b"); ok {
		t.Error("LRU entry survived")
	}
}

// backdate rewrites an entry's envelope WrittenAt so TTL tests need no
// sleeping, mirroring how a long-lived cache directory actually ages.
func backdate(t *testing.T, s *Store, key string, age time.Duration) {
	t.Helper()
	name := fileName(key)
	path := filepath.Join(s.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		t.Fatal(err)
	}
	env.WrittenAt = time.Now().Add(-age).UnixNano()
	writeEnvelope(t, s.dir, name, env)
}

// TestTTLExpiry: entries older than the TTL read as misses, are unlinked
// (self-heal), and are counted separately from corruption drops.
func TestTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{TTL: time.Minute})
	s.Put("k", testVal{N: 7})
	if _, ok := s.Get("k"); !ok {
		t.Fatal("fresh entry missed under TTL")
	}

	backdate(t, s, "k", 2*time.Minute)
	if _, ok := s.Get("k"); ok {
		t.Fatal("expired entry hit")
	}
	if st := s.Stats(); st.Expired != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want 1 expiry and 0 drops", st)
	}
	if _, err := os.Stat(filepath.Join(dir, fileName("k"))); !os.IsNotExist(err) {
		t.Error("expired entry file not unlinked")
	}

	// Self-heal: the next Put rewrites the slot and serves again.
	s.Put("k", testVal{N: 8})
	if v, ok := s.Get("k"); !ok || v != (testVal{N: 8}) {
		t.Errorf("rewritten slot: %v/%v", v, ok)
	}
}

// TestTTLZeroNeverExpires: the default store serves arbitrarily old
// entries.
func TestTTLZeroNeverExpires(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	s.Put("k", testVal{N: 1})
	backdate(t, s, "k", 24*365*time.Hour)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("TTL-less store expired an entry")
	}
}

// TestTTLRecencyBumpDoesNotExtendLifetime: Get refreshes mtime for LRU,
// but expiry is measured against the envelope's write time, so repeated
// hits cannot keep a stale entry alive.
func TestTTLRecencyBumpDoesNotExtendLifetime(t *testing.T) {
	s := open(t, t.TempDir(), Options{TTL: time.Minute})
	s.Put("k", testVal{N: 1})
	for i := 0; i < 3; i++ {
		if _, ok := s.Get("k"); !ok { // each hit bumps mtime
			t.Fatal("live entry missed")
		}
	}
	backdate(t, s, "k", 2*time.Minute)
	now := time.Now()
	if err := os.Chtimes(filepath.Join(s.dir, fileName("k")), now, now); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("fresh mtime rescued an expired entry")
	}
}

// TestPinSurvivesEviction: under capacity pressure the pinned entry is
// spared even when it is the coldest, and the unpinned one goes.
func TestPinSurvivesEviction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxBytes: 1})
	s.Put("keep", testVal{N: 1})
	s.Pin("keep")
	// Make the pinned entry the obvious LRU victim.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, fileName("keep")), past, past); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	e := s.entries[fileName("keep")]
	e.mtime = past
	s.entries[fileName("keep")] = e
	s.mu.Unlock()

	s.Put("bulk", testVal{N: 2})

	if v, ok := s.Get("keep"); !ok || v != (testVal{N: 1}) {
		t.Error("pinned entry was evicted")
	}
	if !s.Pinned("keep") || s.Pinned("bulk") {
		t.Error("Pinned() does not reflect the pin set")
	}

	// Unpin restores ordinary LRU behavior: the next write evicts it.
	s.Unpin("keep")
	s.mu.Lock()
	e = s.entries[fileName("keep")]
	e.mtime = past
	s.entries[fileName("keep")] = e
	s.mu.Unlock()
	s.Put("bulk2", testVal{N: 3})
	if _, ok := s.Get("keep"); ok {
		t.Error("unpinned entry survived eviction")
	}
}

// TestPinnedEntryStillExpires: Pin shields from LRU eviction only —
// an expired pinned entry reads as a miss and self-heals, staying pinned
// for its rewritten successor.
func TestPinnedEntryStillExpires(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{TTL: time.Minute, MaxBytes: 1})
	s.Put("k", testVal{N: 1})
	s.Pin("k")
	backdate(t, s, "k", 2*time.Minute)

	// LRU pressure first: the expired-but-pinned entry must survive it.
	s.Put("other", testVal{N: 9})
	if _, err := os.Stat(filepath.Join(dir, fileName("k"))); err != nil {
		t.Fatal("expired-but-pinned entry did not survive eviction")
	}

	// Reading it is still a miss, and the slot self-heals pinned.
	if _, ok := s.Get("k"); ok {
		t.Fatal("expired pinned entry hit")
	}
	s.Put("k", testVal{N: 2})
	if v, ok := s.Get("k"); !ok || v != (testVal{N: 2}) {
		t.Errorf("healed slot: %v/%v", v, ok)
	}
	if !s.Pinned("k") {
		t.Error("pin lost across expiry")
	}
}
