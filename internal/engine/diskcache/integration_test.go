package diskcache_test

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"mergescale/internal/engine"
	"mergescale/internal/engine/diskcache"
)

type payload struct{ N int }

func init() { gob.Register(payload{}) }

// entryFiles counts entry files on disk (ignoring temp residue, of which
// there should be none).
func entryFiles(t *testing.T, dir string) int {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(des)
}

// TestEngineWarmReplayAcrossStores is the end-to-end contract: engine one
// computes and persists; a second engine over a second Store on the same
// directory replays everything without executing a single job function.
func TestEngineWarmReplayAcrossStores(t *testing.T) {
	dir := t.TempDir()
	jobs := func(executed *int) []engine.Job {
		out := make([]engine.Job, 5)
		for i := range out {
			i := i
			out[i] = engine.Job{
				ID:  fmt.Sprintf("job%d", i),
				Key: engine.Key("warm-replay", i),
				Fn: func(context.Context) (any, error) {
					*executed++
					return payload{N: i}, nil
				},
			}
		}
		return out
	}

	s1, err := diskcache.Open(dir, diskcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var coldRuns int
	e1 := engine.New(engine.Config{Workers: 1, Store: s1})
	for i, r := range e1.Run(context.Background(), jobs(&coldRuns)) {
		if r.Err != nil || r.Value != (payload{N: i}) {
			t.Fatalf("cold job %d: %+v", i, r)
		}
	}
	if coldRuns != 5 {
		t.Fatalf("cold run executed %d jobs, want 5", coldRuns)
	}

	s2, err := diskcache.Open(dir, diskcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var warmRuns int
	e2 := engine.New(engine.Config{Workers: 1, Store: s2})
	for i, r := range e2.Run(context.Background(), jobs(&warmRuns)) {
		if r.Err != nil || r.Value != (payload{N: i}) || !r.Cached {
			t.Fatalf("warm job %d: %+v", i, r)
		}
	}
	if warmRuns != 0 {
		t.Errorf("warm run executed %d jobs, want 0", warmRuns)
	}
	if st := e2.Stats(); st.StoreHits != 5 || st.Executed != 0 {
		t.Errorf("warm stats = %+v, want 5 store hits / 0 executed", st)
	}
}

// TestCancelledJobNeverPersisted: a job that observes cancellation must
// leave no trace in the cache directory, so a later run recomputes it.
func TestCancelledJobNeverPersisted(t *testing.T) {
	dir := t.TempDir()
	s, err := diskcache.Open(dir, diskcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.Config{Workers: 1, Store: s})

	ctx, cancel := context.WithCancel(context.Background())
	res := e.RunOne(ctx, engine.Job{
		ID:  "doomed",
		Key: engine.Key("doomed"),
		Fn: func(ctx context.Context) (any, error) {
			cancel()
			<-ctx.Done()
			return payload{N: 1}, ctx.Err()
		},
	})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("result = %+v, want context.Canceled", res)
	}
	if n := entryFiles(t, dir); n != 0 {
		t.Errorf("cancelled job left %d files in the cache dir", n)
	}
	if st := s.Stats(); st.Puts != 0 {
		t.Errorf("store recorded %d puts for a cancelled job", st.Puts)
	}
}

// TestConcurrentProcessesSharingDir models several processes (separate
// Store instances) hammering one cache directory with overlapping keys:
// no torn reads — every Get returns either a miss or the correct value.
func TestConcurrentProcessesSharingDir(t *testing.T) {
	dir := t.TempDir()
	const stores, rounds, keys = 4, 25, 8

	var wg sync.WaitGroup
	errc := make(chan error, stores)
	for si := 0; si < stores; si++ {
		s, err := diskcache.Open(dir, diskcache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *diskcache.Store) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := 0; k < keys; k++ {
					key := fmt.Sprintf("shared-%d", k)
					s.Put(key, payload{N: k})
					if v, ok := s.Get(key); ok {
						if v != (payload{N: k}) {
							errc <- fmt.Errorf("key %s: read %v", key, v)
							return
						}
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Whatever interleaving happened, a fresh store must read every key
	// back cleanly (all writers agreed on the values).
	s, err := diskcache.Open(dir, diskcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("shared-%d", k)
		if v, ok := s.Get(key); !ok || v != (payload{N: k}) {
			t.Errorf("final read of %s: %v/%v", key, v, ok)
		}
	}
}
