module mergescale

go 1.22
