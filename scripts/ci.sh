#!/usr/bin/env sh
# CI gate: formatting, vet, race-enabled tests, and a one-iteration bench
# pass so bench_test.go cannot rot. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== go test -bench (1 iteration) =="
go test -bench=. -benchtime=1x -run '^$' .

echo "CI OK"
