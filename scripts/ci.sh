#!/usr/bin/env sh
# CI gate: formatting, vet, race-enabled tests, and a one-iteration bench
# pass so bench_test.go cannot rot. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== go test -bench (1 iteration) =="
go test -bench=. -benchtime=1x -run '^$' .

echo "== cold/warm disk-cache determinism =="
# A full -quick `run all` twice against one fresh cache dir: the warm run
# must execute zero jobs and render byte-for-byte identical output.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/mergescale" ./cmd/mergescale
"$tmp/mergescale" -quick -cachedir "$tmp/cache" run all > "$tmp/cold.out"
"$tmp/mergescale" -quick -cachedir "$tmp/cache" -stats run all > "$tmp/warm.out" 2> "$tmp/warm.stats"
cmp "$tmp/cold.out" "$tmp/warm.out"
grep -q '0 executed' "$tmp/warm.stats"
grep -q 'disk:' "$tmp/warm.stats"

echo "== streamed vs buffered byte identity =="
# The streaming pipeline must render exactly the bytes of a buffered run,
# for every backend. The cache directory is warm from the gate above, so
# these passes replay from disk in milliseconds.
for format in text markdown json csv; do
    "$tmp/mergescale" -quick -cachedir "$tmp/cache" -format "$format" run all > "$tmp/buffered.$format"
    "$tmp/mergescale" -quick -cachedir "$tmp/cache" -format "$format" -stream run all > "$tmp/streamed.$format"
    cmp "$tmp/buffered.$format" "$tmp/streamed.$format"
done

echo "CI OK"
