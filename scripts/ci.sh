#!/usr/bin/env sh
# CI gate: formatting, vet, race-enabled tests, and a one-iteration bench
# pass so bench_test.go cannot rot. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race (shuffled) =="
# -shuffle=on randomizes test and subtest execution order so hidden
# inter-test state (shared caches, package-level maps) fails here rather
# than in a future reordering.
go test -race -shuffle=on ./...

echo "== go test -bench (1 iteration) =="
go test -bench=. -benchtime=1x -run '^$' .

echo "== sim hot-path benchmarks (1 iteration smoke) =="
go test -bench BenchmarkSim -benchtime=1x -run '^$' ./internal/sim

echo "== contend benchmarks (1 iteration smoke) =="
go test -bench BenchmarkContend -benchtime=1x -run '^$' ./internal/workload/contend

echo "== allocation budget (without -race: its instrumentation allocates) =="
# The -race suite above skips the AllocsPerRun assertions; this pass arms
# them, failing CI if the steady-state access loop ever allocates again.
# The pattern covers the serial whole-run gate (zero allocations) and the
# sharded-path gate (fixed per-run overhead, zero per access).
go test -run 'SteadyStateZeroAllocs' -count=1 ./internal/sim

echo "== sweep first-row-before-last-job gate =="
# Element-granular streaming acceptance: on a cold 64-point sweep the
# first table row must be released before the last engine job completes.
# The test holds the final point's job hostage until the first ElemRow is
# observed — a buffered (end-of-run) pipeline would deadlock into the
# test's loud 30s timeout instead of passing.
go test -run 'TestSweepFirstRowBeforeLastJobCompletes' -count=1 ./internal/experiments

# The >= 2x serial-vs-parallel wall-clock assertion (TestParallelRunSpeedup)
# arms itself only on 4+ CPU hardware; on this 1-CPU container it skips,
# so the suite above stays green while real machines still enforce it.

echo "== cold/warm disk-cache determinism =="
# A full -quick `run all` twice against one fresh cache dir: the warm run
# must execute zero jobs and render byte-for-byte identical output.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/mergescale" ./cmd/mergescale
"$tmp/mergescale" -quick -cachedir "$tmp/cache" run all > "$tmp/cold.out"
"$tmp/mergescale" -quick -cachedir "$tmp/cache" -stats run all > "$tmp/warm.out" 2> "$tmp/warm.stats"
cmp "$tmp/cold.out" "$tmp/warm.out"
grep -q '0 executed' "$tmp/warm.stats"
grep -q 'disk:' "$tmp/warm.stats"

echo "== sharded-simulator bit identity =="
# `run all` with 4 intra-run simulator workers must render exactly the
# serial bytes (the sharded scheduler is bit-identical by construction),
# and a warm replay at -simworkers 4 must execute zero jobs — proving the
# cache keys exclude the parallelism knob in both directions.
"$tmp/mergescale" -quick -simworkers 4 run all > "$tmp/par.out"
cmp "$tmp/cold.out" "$tmp/par.out"
"$tmp/mergescale" -quick -simworkers 4 -cachedir "$tmp/cache" -stats run all > "$tmp/parwarm.out" 2> "$tmp/parwarm.stats"
cmp "$tmp/cold.out" "$tmp/parwarm.out"
grep -q '0 executed' "$tmp/parwarm.stats"

echo "== contended-workload determinism =="
# The contend experiments simulate zipf-skewed MESI traffic whose
# hot-line statistics feed the rendered tables; a fresh cache dir proves
# the sweep is byte-deterministic end to end and that the warm replay
# serves both modes without executing a single job.
for id in ext-contend ext-contend-split; do
    "$tmp/mergescale" -quick -cachedir "$tmp/contendcache" run "$id" > "$tmp/contend.$id.cold"
    "$tmp/mergescale" -quick -cachedir "$tmp/contendcache" -stats run "$id" > "$tmp/contend.$id.warm" 2> "$tmp/contend.$id.stats"
    cmp "$tmp/contend.$id.cold" "$tmp/contend.$id.warm"
    grep -q '0 executed' "$tmp/contend.$id.stats"
done

echo "== streamed vs buffered byte identity =="
# The streaming pipeline must render exactly the bytes of a buffered run,
# for every backend. The cache directory is warm from the gate above, so
# these passes replay from disk in milliseconds.
for format in text markdown json csv; do
    "$tmp/mergescale" -quick -cachedir "$tmp/cache" -format "$format" run all > "$tmp/buffered.$format"
    "$tmp/mergescale" -quick -cachedir "$tmp/cache" -format "$format" -stream run all > "$tmp/streamed.$format"
    cmp "$tmp/buffered.$format" "$tmp/streamed.$format"
done

echo "== HTTP serving front end =="
# Boot the server on an ephemeral port over the warm cache directory,
# fetch run/all over chunked HTTP, and require byte identity with the
# CLI's buffered output plus zero executed jobs (/stats counts since
# boot, so a warm disk cache must satisfy the whole run).
serve_pid=""
trap '[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null; rm -rf "$tmp"' EXIT
"$tmp/mergescale" -quick -cachedir "$tmp/cache" serve -addr 127.0.0.1:0 2> "$tmp/serve.log" &
serve_pid=$!
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's#.*serving on http://##p' "$tmp/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "server did not come up:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
curl -sfS "http://$addr/healthz" > /dev/null

echo "== render stampede gate =="
# 8 concurrent identical cold /run/all clients against the freshly booted
# server: every body must match the CLI's buffered bytes, and /metrics
# must show exactly ONE render — the singleflight leader; the other 7
# were coalesced onto it or served from the render cache.
stampede_pids=""
i=0
while [ $i -lt 8 ]; do
    curl -sfS "http://$addr/run/all" > "$tmp/stampede.$i" &
    stampede_pids="$stampede_pids $!"
    i=$((i + 1))
done
# wait on the curls by pid — a bare `wait` would also block on the
# backgrounded server, which never exits.
for pid in $stampede_pids; do
    wait "$pid"
done
i=0
while [ $i -lt 8 ]; do
    cmp "$tmp/buffered.text" "$tmp/stampede.$i"
    i=$((i + 1))
done
curl -sfS "http://$addr/metrics" > "$tmp/metrics.txt"
grep -q '^mergescale_renders_total 1$' "$tmp/metrics.txt"

curl -sfS "http://$addr/run/all" > "$tmp/http.out"
cmp "$tmp/buffered.text" "$tmp/http.out"
curl -sfS "http://$addr/stats" > "$tmp/stats.json"
grep -q '"executed":0' "$tmp/stats.json"
grep -q '"storeHits":' "$tmp/stats.json"

echo "== /metrics exposition gate =="
# Re-scrape after the single /run/all above: the request counter must
# cover the stampede plus that request, and the warm disk cache means the
# engine still executed zero job functions since boot.
curl -sfS "http://$addr/metrics" > "$tmp/metrics.txt"
grep -q '^mergescale_http_requests_total{endpoint="/run",format="text",code="200"} 9$' "$tmp/metrics.txt"
grep -q '^mergescale_http_request_duration_seconds_bucket{endpoint="/run",format="text",le="+Inf"} 9$' "$tmp/metrics.txt"
grep -q '^mergescale_engine_jobs_executed_total 0$' "$tmp/metrics.txt"
grep -q '^# TYPE mergescale_http_request_duration_seconds histogram$' "$tmp/metrics.txt"
# Robustness counters on the healthy path: all zero, breaker closed —
# fault machinery must be invisible until faults actually happen.
grep -q '^mergescale_store_breaker_state 0$' "$tmp/metrics.txt"
grep -q '^mergescale_store_breaker_opened_total 0$' "$tmp/metrics.txt"
grep -q '^mergescale_disk_write_errors_total 0$' "$tmp/metrics.txt"
grep -q '^mergescale_disk_pin_save_errors_total 0$' "$tmp/metrics.txt"
grep -q '^mergescale_http_request_timeouts_total 0$' "$tmp/metrics.txt"
curl -s -o "$tmp/readyz.json" -w '%{http_code}' "http://$addr/readyz" > "$tmp/readyz.code"
grep -q '^200$' "$tmp/readyz.code"
grep -q '"status":"ok"' "$tmp/readyz.json"

echo "== load harness smoke =="
# -slo-warm-p99 with a generous budget doubles as a smoke test of the
# SLO gate: the flag must parse, evaluate, and report the margin.
"$tmp/mergescale" load -url "http://$addr" -requests 32 -concurrency 4 -seed 1 \
    -slo-warm-p99 30s > "$tmp/load.json" 2> "$tmp/load.summary"
grep -q '"req_per_sec"' "$tmp/load.json"
grep -q '"errors": 0' "$tmp/load.json"
grep -q '"requests": 32' "$tmp/load.json"
grep -q 'req/s' "$tmp/load.summary"
grep -q 'SLO met' "$tmp/load.summary"

echo "== POST /sweep vs CLI byte identity =="
# A cold 64-point grid (2 apps x 2 budgets x 16 r values) through both
# fronts: `mergescale sweep` and POST /sweep must produce byte-identical
# output for the same grid — one request struct, one normalized plan,
# one streaming pipeline.
cat > "$tmp/grid.json" <<'EOF'
{"apps":[{"f":0.975,"fcon":0.1,"fored":0.2},{"f":0.9}],
 "budgets":[64,256],
 "rs":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]}
EOF
"$tmp/mergescale" sweep -grid "$tmp/grid.json" > "$tmp/sweep.cli"
curl -sfS -X POST --data-binary @"$tmp/grid.json" "http://$addr/sweep" > "$tmp/sweep.http"
cmp "$tmp/sweep.cli" "$tmp/sweep.http"

echo "== reordered-grid render-cache gate =="
# The same design space spelled with every axis shuffled and duplicated
# must normalize to the same canonical keys and plan fingerprint: the
# second request is a whole-body render-cache hit (X-Render-Cache: hit),
# byte-identical, and /stats proves the engine executed zero new jobs.
executed_before=$(curl -sfS "http://$addr/stats" | grep -o '"executed":[0-9]*')
cat > "$tmp/grid2.json" <<'EOF'
{"apps":[{"f":0.9,"growth":"linear"},{"f":0.975,"fcon":0.1,"fored":0.2}],
 "budgets":[256,64,256],
 "rs":[16,15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,16]}
EOF
curl -sfS -D "$tmp/sweep2.hdr" -X POST --data-binary @"$tmp/grid2.json" \
    "http://$addr/sweep" > "$tmp/sweep2.http"
grep -qi '^X-Render-Cache: hit' "$tmp/sweep2.hdr"
cmp "$tmp/sweep.http" "$tmp/sweep2.http"
executed_after=$(curl -sfS "http://$addr/stats" | grep -o '"executed":[0-9]*')
[ "$executed_before" = "$executed_after" ]

kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

echo "== chaos gate: 100% disk-store faults =="
# Boot a server whose every store operation fails (get.err=1,put.err=1):
# /run/all must still return byte-identical output (every miss is a
# deterministic recompute), the breaker must be open in /metrics, /readyz
# must report degraded with 503, and /healthz must stay a plain 200 — the
# graceful-degradation contract end to end.
"$tmp/mergescale" -quick -cachedir "$tmp/chaoscache" -faults 'get.err=1,put.err=1' \
    serve -addr 127.0.0.1:0 2> "$tmp/chaos.log" &
serve_pid=$!
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's#.*serving on http://##p' "$tmp/chaos.log")
    [ -n "$addr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "chaos server did not come up:" >&2
    cat "$tmp/chaos.log" >&2
    exit 1
fi
curl -sfS "http://$addr/run/all" > "$tmp/chaos.out"
cmp "$tmp/buffered.text" "$tmp/chaos.out"
curl -sfS "http://$addr/metrics" > "$tmp/chaos.metrics"
grep -q '^mergescale_store_breaker_state 2$' "$tmp/chaos.metrics"
grep -q '^mergescale_store_breaker_opened_total [1-9]' "$tmp/chaos.metrics"
grep -q '^mergescale_faults_injected_total [1-9]' "$tmp/chaos.metrics"
curl -s -o "$tmp/chaos.readyz" -w '%{http_code}' "http://$addr/readyz" > "$tmp/chaos.readyz.code"
grep -q '^503$' "$tmp/chaos.readyz.code"
grep -q '"status":"degraded"' "$tmp/chaos.readyz"
grep -q '"store":"degraded"' "$tmp/chaos.readyz"
curl -sfS "http://$addr/healthz" > /dev/null

kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

echo "CI OK"
