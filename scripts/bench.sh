#!/usr/bin/env sh
# Runs the registry benchmarks and records the result as BENCH_engine.json
# in the repo root, so the perf trajectory of the engine (serial vs
# fanned-out full-registry regeneration) is tracked as data instead of
# anecdotes. Run from anywhere; knobs via environment:
#
#   BENCH_PATTERN  benchmark regexp   (default BenchmarkRegistry — the
#                  serial/engine pair; use . for the full suite)
#   BENCH_TIME     -benchtime value   (default 1x: one full registry pass
#                  per benchmark; raise to 3x/1s on quiet machines)
#   BENCH_COUNT    -count value       (default 1)
#
# Note the CI/dev container exposes 1 CPU, where engine and serial times
# converge (that delta is the fan-out overhead bound); judge speedups on
# real multicore hardware (see TestRegistryEngineSpeedup).
set -eu

cd "$(dirname "$0")/.."

pattern=${BENCH_PATTERN:-BenchmarkRegistry}
benchtime=${BENCH_TIME:-1x}
count=${BENCH_COUNT:-1}
out=BENCH_engine.json

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== go test -bench $pattern (benchtime $benchtime, count $count) =="
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -count "$count" -benchmem . | tee "$tmp"

# Convert `BenchmarkName-P  iters  ns/op  B/op  allocs/op` lines into JSON.
# (On 1-CPU machines go omits the -P suffix; fall back to the CPU count.)
ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
awk -v goversion="$(go env GOVERSION)" -v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" -v defprocs="$ncpu" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    procs = defprocs
    if (name ~ /-[0-9]+$/) {
        procs = name; sub(/^.*-/, "", procs)
        sub(/-[0-9]+$/, "", name)
    }
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    rec = sprintf("    {\"name\": \"%s\", \"procs\": %s, \"iterations\": %s, \"ns_per_op\": %s", name, procs, iters, ns)
    if (bytes != "")  rec = rec sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") rec = rec sprintf(", \"allocs_per_op\": %s", allocs)
    recs[n++] = rec "}"
}
END {
    if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print "{"
    printf "  \"go\": \"%s\",\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n", goversion, goos, goarch
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
}' "$tmp" > "$out"

echo "wrote $out:"
cat "$out"
