#!/usr/bin/env sh
# Runs the tracked benchmark suites and records the results as JSON in the
# repo root, so the perf trajectory is tracked as data instead of
# anecdotes:
#
#   BENCH_engine.json  registry benchmarks (serial vs fanned-out full-
#                      registry regeneration, package .), recorded under
#                      BOTH protocols: benchtime 1x (a cold process — the
#                      pre-PR-5 baseline protocol, comparable to the
#                      historical 19.7k allocs/op row) and 3x (amortized
#                      steady state of the pooled machinery — machine/
#                      worker/buffer pools and the key intern table pay
#                      their one-time setup on the first pass). Every row
#                      carries its benchtime; only compare rows at equal
#                      benchtime across commits.
#   BENCH_sim.json     simulator hot-path microbenchmarks (directory ops,
#                      L1 hit loop, access mix, full Machine.Run per
#                      workload; package ./internal/sim)
#   BENCH_contend.json contended-workload benchmarks (package
#                      ./internal/workload/contend): Machine.Run at p=8
#                      under joined (invalidation-storm) vs split
#                      (privatized) traffic, plus the native goroutine
#                      pool at 4 threads. The joined/split ns_per_op
#                      ratio is the simulated cost of sharing hot lines.
#   BENCH_serve.json   HTTP serving throughput/latency: `mergescale load`
#                      replaying a pinned trace (powerlaw, seed 1,
#                      concurrency 8, text+json mix) against a server
#                      booted over a warm -quick disk cache. Reports
#                      req/s plus p50/p95/p99 split cold (first render
#                      per key) vs warm (render-cache hits).
#   BENCH_sweep.json   element-granular streaming latency: `mergescale
#                      sweep` over a pinned 64-point grid (2 apps x 2
#                      budgets x 16 r values), cold then warm against one
#                      disk cache, parsing time-to-first-row and total
#                      wall time from the -timing stderr line. The cold
#                      first-row/total gap is the streaming win (the
#                      first row ships while later points compute); warm
#                      first-row ~= warm total is the cache win.
#   BENCH_faults.json  graceful-degradation cost: the BENCH_serve warm
#                      replay repeated at 0%, 1%, and 10% injected
#                      disk-store fault rates (-faults get.err/put.err
#                      over a warm cache). Per rate: req/s, p99 over all
#                      requests, warm p99, faults injected, and breaker
#                      trips from /metrics. The 0% row must match the
#                      serve suite's shape; the 1%/10% deltas price what
#                      a flaky disk costs the tails when every fault
#                      degrades to a recompute instead of an error.
#
# Run from anywhere; knobs via environment:
#
#   BENCH_PATTERN      registry benchmark regexp (default BenchmarkRegistry
#                      — the serial/engine pair; use . for the full suite)
#   BENCH_SIM_PATTERN  sim benchmark regexp      (default BenchmarkSim)
#   BENCH_TIMES        registry -benchtime values, space-separated
#                      (default "1x 3x")
#   BENCH_SIM_TIME     sim -benchtime     (default 100x: the micro-
#                      benchmarks are fast, one iteration is all noise)
#   BENCH_CONTEND_PATTERN  contend benchmark regexp (default
#                      BenchmarkContend)
#   BENCH_CONTEND_TIME contend -benchtime (default 20x)
#   BENCH_COUNT        -count value       (default 1)
#   BENCH_SERVE_REQUESTS     load trace length          (default 400)
#   BENCH_SERVE_CONCURRENCY  load closed-loop workers   (default 8)
#   BENCH_FAULTS_REQUESTS    faults-suite trace length  (default 200)
#   BENCH_SUITES       space-separated subset of "engine sim contend
#                      sweep serve faults" to run (default: all six) —
#                      regenerate one JSON file without paying for the
#                      rest
#
# Note the CI/dev container exposes 1 CPU, where engine and serial times
# converge (that delta is the fan-out overhead bound); judge speedups on
# real multicore hardware (see TestRegistryEngineSpeedup). The allocs/op
# columns are CPU-count independent and are the numbers the allocation
# budget (ISSUE 5) is graded on.
set -eu

cd "$(dirname "$0")/.."

count=${BENCH_COUNT:-1}
suites=${BENCH_SUITES:-engine sim contend sweep serve faults}

want_suite() {
    case " $suites " in
        *" $1 "*) return 0 ;;
        *) return 1 ;;
    esac
}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# run_suite PKG PATTERN BENCHTIME — appends one benchmark run to $tmp,
# preceded by a marker line tagging the rows with their protocol.
run_suite() {
    pkg=$1; pattern=$2; benchtime=$3
    echo "== go test $pkg -bench $pattern (benchtime $benchtime, count $count) =="
    echo "##benchtime=$benchtime" >> "$tmp"
    go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -count "$count" -benchmem "$pkg" | tee -a "$tmp"
}

# emit_json OUT — converts the accumulated `BenchmarkName-P  iters  ns/op
# B/op  allocs/op` lines in $tmp into OUT as JSON, one row per benchmark
# per protocol. (On 1-CPU machines go omits the -P suffix; fall back to
# the CPU count.)
emit_json() {
    out=$1
    ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
    awk -v goversion="$(go env GOVERSION)" -v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" -v defprocs="$ncpu" '
BEGIN { n = 0; bt = "" }
/^##benchtime=/ { bt = $0; sub(/^##benchtime=/, "", bt); next }
/^Benchmark/ {
    name = $1
    procs = defprocs
    if (name ~ /-[0-9]+$/) {
        procs = name; sub(/^.*-/, "", procs)
        sub(/-[0-9]+$/, "", name)
    }
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    rec = sprintf("    {\"name\": \"%s\", \"benchtime\": \"%s\", \"procs\": %s, \"iterations\": %s, \"ns_per_op\": %s", name, bt, procs, iters, ns)
    if (bytes != "")  rec = rec sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") rec = rec sprintf(", \"allocs_per_op\": %s", allocs)
    recs[n++] = rec "}"
}
END {
    if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print "{"
    printf "  \"go\": \"%s\",\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n", goversion, goos, goarch
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
}' "$tmp" > "$out"

    echo "wrote $out:"
    cat "$out"
}

if want_suite engine; then
    registry_times=${BENCH_TIMES:-1x 3x}
    for bt in $registry_times; do
        run_suite . "${BENCH_PATTERN:-BenchmarkRegistry}" "$bt"
    done
    emit_json BENCH_engine.json
fi

if want_suite sim; then
    # The sim suite includes the serial-vs-parallel pairs: each
    # BenchmarkSimRun<W>256 row has a ...256Par4 twin running the same
    # program through RunParallel at 4 workers. Same-hardware pairs are
    # the tracked intra-run speedup; on 1-CPU containers the Par4 rows
    # measure rendezvous overhead instead.
    : > "$tmp"
    run_suite ./internal/sim "${BENCH_SIM_PATTERN:-BenchmarkSim}" "${BENCH_SIM_TIME:-100x}"
    emit_json BENCH_sim.json
fi

if want_suite contend; then
    : > "$tmp"
    run_suite ./internal/workload/contend "${BENCH_CONTEND_PATTERN:-BenchmarkContend}" "${BENCH_CONTEND_TIME:-20x}"
    emit_json BENCH_contend.json
fi

if want_suite sweep; then
    echo "== sweep first-row/total latency =="
    # Pinned 64-point grid so rows compare across commits. Cold pass
    # computes every point and streams rows as they resolve; warm pass
    # replays the same grid from the disk cache. Timings come from the
    # machine-readable -timing line on stderr:
    #   mergescale sweep: points=N rows=N first-row=Xs total=Ys
    sweepdir=$(mktemp -d)
    trap 'rm -rf "$sweepdir"; rm -f "$tmp"' EXIT
    go build -o "$sweepdir/mergescale" ./cmd/mergescale
    cat > "$sweepdir/grid.json" <<'EOF'
{"apps":[{"f":0.975,"fcon":0.1,"fored":0.2},{"f":0.9}],
 "budgets":[64,256],
 "rs":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]}
EOF
    "$sweepdir/mergescale" sweep -grid "$sweepdir/grid.json" -timing \
        -cachedir "$sweepdir/cache" > /dev/null 2> "$sweepdir/cold.timing"
    "$sweepdir/mergescale" sweep -grid "$sweepdir/grid.json" -timing \
        -cachedir "$sweepdir/cache" > /dev/null 2> "$sweepdir/warm.timing"

    # parse_timing FILE FIELD — extracts the seconds value of first-row=
    # or total= from a -timing line.
    parse_timing() {
        sed -n "s/.* $2=\([0-9.]*\)s.*/\1/p" "$1"
    }
    points=$(sed -n 's/.* points=\([0-9]*\) .*/\1/p' "$sweepdir/cold.timing")
    cold_first=$(parse_timing "$sweepdir/cold.timing" first-row)
    cold_total=$(parse_timing "$sweepdir/cold.timing" total)
    warm_first=$(parse_timing "$sweepdir/warm.timing" first-row)
    warm_total=$(parse_timing "$sweepdir/warm.timing" total)
    if [ -z "$points" ] || [ -z "$cold_first" ] || [ -z "$warm_total" ]; then
        echo "bench.sh: could not parse -timing output:" >&2
        cat "$sweepdir/cold.timing" "$sweepdir/warm.timing" >&2
        exit 1
    fi
    cat > BENCH_sweep.json <<EOF
{
  "go": "$(go env GOVERSION)",
  "goos": "$(go env GOOS)",
  "goarch": "$(go env GOARCH)",
  "grid": "2 apps x 2 budgets x 16 rs",
  "points": $points,
  "cold": {"first_row_s": $cold_first, "total_s": $cold_total},
  "warm": {"first_row_s": $warm_first, "total_s": $warm_total}
}
EOF
    rm -rf "$sweepdir"
    echo "wrote BENCH_sweep.json:"
    cat BENCH_sweep.json
fi

if want_suite serve; then
    echo "== serve load benchmark =="
    # Pinned protocol so rows compare across commits: power-law trace over
    # all registry targets, seed 1, 8 closed-loop workers, text+json mix.
    # The disk cache is pre-warmed with a CLI pass so the measurement covers
    # serving + rendering, not simulator runtime; the render cache starts
    # cold, so the cold bucket is the first render per (target, format) key
    # and the warm bucket is render-cache hits.
    servedir=$(mktemp -d)
    serve_pid=""
    cleanup_serve() {
        [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null
        rm -rf "$servedir"
        rm -f "$tmp"
    }
    trap cleanup_serve EXIT

    go build -o "$servedir/mergescale" ./cmd/mergescale
    "$servedir/mergescale" -quick -cachedir "$servedir/cache" run all > /dev/null
    "$servedir/mergescale" -quick -cachedir "$servedir/cache" serve -addr 127.0.0.1:0 \
        2> "$servedir/serve.log" &
    serve_pid=$!
    addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's#.*serving on http://##p' "$servedir/serve.log")
        [ -n "$addr" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "bench.sh: serve did not come up:" >&2
        cat "$servedir/serve.log" >&2
        exit 1
    fi
    "$servedir/mergescale" load -url "http://$addr" \
        -profile powerlaw -seed 1 -alpha 1.5 \
        -formats text,json \
        -concurrency "${BENCH_SERVE_CONCURRENCY:-8}" \
        -requests "${BENCH_SERVE_REQUESTS:-400}" \
        -out BENCH_serve.json
    kill "$serve_pid"
    wait "$serve_pid" 2>/dev/null || true
    serve_pid=""

    echo "wrote BENCH_serve.json:"
    cat BENCH_serve.json
fi

if want_suite faults; then
    echo "== fault-rate degradation benchmark =="
    # The serve protocol (powerlaw, seed 1, 8 workers, text+json) replayed
    # against servers whose disk store fails at 0%, 1%, and 10% per
    # operation (seed 1, so the fault sequence is identical across
    # commits). The cache is pre-warmed; an injected get fault turns a
    # warm hit into a recompute, so the p99 deltas price degradation,
    # never correctness — bodies stay byte-identical by construction.
    faultdir=$(mktemp -d)
    serve_pid=""
    cleanup_faults() {
        [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null
        rm -rf "$faultdir"
        rm -f "$tmp"
    }
    trap cleanup_faults EXIT

    go build -o "$faultdir/mergescale" ./cmd/mergescale
    "$faultdir/mergescale" -quick -cachedir "$faultdir/cache" run all > /dev/null

    rows=""
    for rate in 0 0.01 0.1; do
        if [ "$rate" = 0 ]; then
            "$faultdir/mergescale" -quick -cachedir "$faultdir/cache" \
                serve -addr 127.0.0.1:0 2> "$faultdir/serve.log" &
        else
            "$faultdir/mergescale" -quick -cachedir "$faultdir/cache" \
                -faults "seed=1,get.err=$rate,put.err=$rate" \
                serve -addr 127.0.0.1:0 2> "$faultdir/serve.log" &
        fi
        serve_pid=$!
        addr=""
        i=0
        while [ $i -lt 100 ]; do
            addr=$(sed -n 's#.*serving on http://##p' "$faultdir/serve.log")
            [ -n "$addr" ] && break
            sleep 0.1
            i=$((i + 1))
        done
        if [ -z "$addr" ]; then
            echo "bench.sh: faulted serve ($rate) did not come up:" >&2
            cat "$faultdir/serve.log" >&2
            exit 1
        fi
        "$faultdir/mergescale" load -url "http://$addr" \
            -profile powerlaw -seed 1 -alpha 1.5 \
            -formats text,json \
            -concurrency "${BENCH_SERVE_CONCURRENCY:-8}" \
            -requests "${BENCH_FAULTS_REQUESTS:-200}" \
            -out "$faultdir/load.$rate.json" 2> /dev/null
        curl -sfS "http://$addr/metrics" > "$faultdir/metrics.$rate.txt"
        kill "$serve_pid"
        wait "$serve_pid" 2>/dev/null || true
        serve_pid=""
        rm -f "$faultdir/serve.log"

        rps=$(sed -n 's/.*"req_per_sec": \([0-9.]*\).*/\1/p' "$faultdir/load.$rate.json")
        # Bucket order in the load report is cold, warm, all.
        warm_p99=$(grep '"p99_ms"' "$faultdir/load.$rate.json" | sed -n 2p | sed 's/.*: \([0-9.]*\).*/\1/')
        all_p99=$(grep '"p99_ms"' "$faultdir/load.$rate.json" | sed -n 3p | sed 's/.*: \([0-9.]*\).*/\1/')
        injected=$(sed -n 's/^mergescale_faults_injected_total \([0-9]*\)$/\1/p' "$faultdir/metrics.$rate.txt")
        trips=$(sed -n 's/^mergescale_store_breaker_opened_total \([0-9]*\)$/\1/p' "$faultdir/metrics.$rate.txt")
        [ -n "$injected" ] || injected=0
        [ -n "$trips" ] || trips=0
        if [ -z "$rps" ] || [ -z "$all_p99" ]; then
            echo "bench.sh: could not parse load report for rate $rate:" >&2
            cat "$faultdir/load.$rate.json" >&2
            exit 1
        fi
        [ -n "$rows" ] && rows="$rows,"
        rows="$rows
    {\"fault_rate\": $rate, \"req_per_sec\": $rps, \"p99_all_ms\": $all_p99, \"p99_warm_ms\": ${warm_p99:-0}, \"faults_injected\": $injected, \"breaker_trips\": $trips}"
    done

    cat > BENCH_faults.json <<EOF
{
  "go": "$(go env GOVERSION)",
  "goos": "$(go env GOOS)",
  "goarch": "$(go env GOARCH)",
  "protocol": "powerlaw seed 1, concurrency ${BENCH_SERVE_CONCURRENCY:-8}, text+json, ${BENCH_FAULTS_REQUESTS:-200} requests, warm -quick cache, faults seed=1 get.err/put.err at rate",
  "rates": [$rows
  ]
}
EOF
    rm -rf "$faultdir"
    echo "wrote BENCH_faults.json:"
    cat BENCH_faults.json
fi
